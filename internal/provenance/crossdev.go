package provenance

import (
	"sort"

	"acr/internal/netcfg"
)

// This file extends the per-prefix derivation DAG with a device-level
// influence graph: which routers can affect which other routers' routing
// state, and through which configuration lines. The per-prefix Graph
// answers "which lines did this route execute"; the DeviceGraph answers
// the dual static question "which routers could a change to this router's
// configuration possibly reach" — the reachability relation the candidate
// impact analysis (internal/analysis) uses to over-approximate the blast
// radius of an edit before any simulation runs.

// EdgeKind classifies a cross-device influence edge.
type EdgeKind uint8

// Edge kinds.
const (
	// SessionEdge connects two routers that share a physical adjacency over
	// which a BGP session runs — or could run after an edit (a configured
	// link is an influence channel whether or not the session is currently
	// established; edits can bring it up).
	SessionEdge EdgeKind = iota
	// RedistributeEdge is a self-edge recording that a router's static
	// routes flow into BGP (redistribute static): the channel through which
	// a dataplane-only construct influences control-plane state.
	RedistributeEdge
)

// String names the kind.
func (k EdgeKind) String() string {
	if k == RedistributeEdge {
		return "redistribute"
	}
	return "session"
}

// DeviceEdge is one influence channel between two devices (or a
// redistribution self-edge). Established distinguishes a live session from
// a potential one (adjacency with no session, or a failed session); both
// count for reachability, because an edit can change session state.
type DeviceEdge struct {
	From, To    string
	Kind        EdgeKind
	Established bool
	// Lines are the configuration lines realizing the channel: the session
	// stanzas of both ends (established or failed), or the redistribute
	// statement. Empty for a bare adjacency with no configuration.
	Lines []netcfg.LineRef
}

// DeviceGraph is the cross-device influence graph. Like the per-prefix
// Graph it is append-only: build it once per compiled network, then only
// read it — clones of verify.Incremental share one instance by pointer.
type DeviceGraph struct {
	order []string
	edges map[string][]DeviceEdge
	comp  map[string]int // device -> connected-component id; built lazily
}

// NewDeviceGraph returns a graph over the given devices (insertion order
// is preserved for deterministic iteration).
func NewDeviceGraph(devices []string) *DeviceGraph {
	g := &DeviceGraph{edges: map[string][]DeviceEdge{}}
	g.order = append(g.order, devices...)
	for _, d := range devices {
		if _, ok := g.edges[d]; !ok {
			g.edges[d] = nil
		}
	}
	return g
}

// AddEdge records an influence channel. Session edges are stored on both
// endpoints (influence through a session flows both ways: imports in, and
// the session's existence shapes what the peer hears back).
func (g *DeviceGraph) AddEdge(e DeviceEdge) {
	g.comp = nil
	g.edges[e.From] = append(g.edges[e.From], e)
	if e.From != e.To {
		rev := e
		rev.From, rev.To = e.To, e.From
		g.edges[rev.From] = append(g.edges[rev.From], rev)
	}
}

// Seal precomputes the component index so subsequent read-only queries
// (SameComponent, Reachable) are safe for concurrent use — clones of the
// incremental verifier share one sealed graph across worker goroutines.
// Call it after the last AddEdge; it returns the receiver for chaining.
func (g *DeviceGraph) Seal() *DeviceGraph {
	g.components()
	return g
}

// Devices returns the device set in insertion order.
func (g *DeviceGraph) Devices() []string { return append([]string(nil), g.order...) }

// Edges returns the influence channels incident to dev.
func (g *DeviceGraph) Edges(dev string) []DeviceEdge {
	return append([]DeviceEdge(nil), g.edges[dev]...)
}

// components computes connected components over every edge (established or
// not) and memoizes the result.
func (g *DeviceGraph) components() map[string]int {
	if g.comp != nil {
		return g.comp
	}
	comp := map[string]int{}
	next := 0
	for _, root := range g.order {
		if _, done := comp[root]; done {
			continue
		}
		stack := []string{root}
		comp[root] = next
		for len(stack) > 0 {
			d := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.edges[d] {
				if _, done := comp[e.To]; !done {
					comp[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	g.comp = comp
	return comp
}

// SameComponent reports whether a change on device a can, through any
// chain of session edges, influence routing state on device b. Unknown
// devices are conservatively reported as connected.
func (g *DeviceGraph) SameComponent(a, b string) bool {
	if a == b {
		return true
	}
	comp := g.components()
	ca, oka := comp[a]
	cb, okb := comp[b]
	if !oka || !okb {
		return true
	}
	return ca == cb
}

// Transit reports whether dev can carry routes *between* other devices:
// it has session channels to at least two distinct neighbors. A non-transit
// (leaf) device re-advertises routes only back toward its single neighbor,
// where AS-path loop detection rejects them (export prepends the leaf's
// ASN), so its control-plane changes reach the rest of the network only
// through routes it originates itself. Unknown devices are conservatively
// transit. Read-only over a sealed graph; safe for concurrent use.
func (g *DeviceGraph) Transit(dev string) bool {
	edges, ok := g.edges[dev]
	if !ok {
		return true
	}
	seen := map[string]bool{}
	for _, e := range edges {
		if e.Kind != SessionEdge || e.To == dev {
			continue
		}
		seen[e.To] = true
		if len(seen) >= 2 {
			return true
		}
	}
	return false
}

// Reachable returns every device in dev's component, sorted. This is the
// static over-approximation of "routers whose state an edit on dev can
// touch": BGP routes only propagate over adjacencies, so the component is
// a sound influence bound under any single-component edit.
func (g *DeviceGraph) Reachable(dev string) []string {
	comp := g.components()
	id, ok := comp[dev]
	if !ok {
		return append([]string(nil), g.order...)
	}
	var out []string
	for d, c := range comp {
		if c == id {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}
