package coverage_test

import (
	"testing"

	"acr/internal/bgp"
	"acr/internal/coverage"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func build(t *testing.T, s *scenario.Scenario) (*bgp.Net, *coverage.Matrix) {
	t.Helper()
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	g := bgp.BuildProvenance(n, out)
	rep := verify.Verify(n, out, s.Intents)
	return n, coverage.Build(n, g, rep)
}

func TestMatrixTotals(t *testing.T) {
	_, m := build(t, scenario.Figure2())
	if m.TotalFailed() != 1 || m.TotalPassed() != 2 {
		t.Fatalf("totals = %d/%d, want 1 failed / 2 passed", m.TotalFailed(), m.TotalPassed())
	}
	if len(m.CoveredLines()) == 0 {
		t.Fatal("no lines covered")
	}
}

func TestFailingTestCoversOverridePolicyOnA(t *testing.T) {
	_, m := build(t, scenario.Figure2())
	var failing *coverage.TestCoverage
	for i := range m.Tests {
		if !m.Tests[i].Pass {
			failing = &m.Tests[i]
		}
	}
	if failing == nil {
		t.Fatal("no failing test")
	}
	for _, want := range []netcfg.LineRef{
		{Device: "A", Line: scenario.FigureALineDCNImport},
		{Device: "A", Line: scenario.FigureALinePrefixList},
		{Device: "A", Line: scenario.FigureALinePolicy},
		{Device: "A", Line: scenario.FigureALineOverwrite},
		{Device: "C", Line: scenario.FigureCLineDCNImport},
	} {
		if !failing.Lines[want] {
			t.Errorf("failing test does not cover %v", want)
		}
	}
	// The PoP-side attachment on A is only exercised by PoP-A's prefix.
	if failing.Lines[netcfg.LineRef{Device: "A", Line: scenario.FigureALinePoPImport}] {
		t.Error("failing test should not cover A's PoP-side attachment")
	}
}

func TestMissingOriginNegativeCoverage(t *testing.T) {
	// Delete the redistribute line of a static-originating stub: the
	// failing reachability test must cover the remaining static line.
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{StaticOriginEvery: 1})
	f := netcfg.MustParse(s.Configs["pop0"])
	if f.BGP.Redistribute == nil {
		t.Fatal("pop0 does not use static origination")
	}
	redisLine := f.BGP.Redistribute.Line
	staticLine := f.Statics[0].Line
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: redisLine}}}.Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop0"] = next
	_, m := build(t, s)
	if m.TotalFailed() == 0 {
		t.Fatal("missing redistribution caused no failures")
	}
	// The static line shifted up by one if it followed the redistribute
	// line; recompute from the edited config.
	f2 := netcfg.MustParse(s.Configs["pop0"])
	staticLine = f2.Statics[0].Line
	covered := false
	for _, tc := range m.Tests {
		if !tc.Pass && tc.Lines[netcfg.LineRef{Device: "pop0", Line: staticLine}] {
			covered = true
		}
	}
	if !covered {
		t.Error("failing tests do not cover the orphaned static route line (negative provenance)")
	}
}

func TestFailedSessionNegativeCoverage(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	f := netcfg.MustParse(s.Configs["pop1"])
	asnLine := f.BGP.Peers[0].ASNLine
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At:   asnLine,
		Text: " peer " + f.BGP.Peers[0].Addr.String() + " as-number 63999",
	}}}.Apply(s.Configs["pop1"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop1"] = next
	n, m := build(t, s)
	if len(n.Failed) == 0 {
		t.Fatal("session should have failed")
	}
	ref := netcfg.LineRef{Device: "pop1", Line: asnLine}
	for _, tc := range m.Tests {
		if tc.Pass && tc.Lines[ref] {
			t.Errorf("passing test %s covers the failed-session line", tc.ID)
		}
		if !tc.Pass && !tc.Lines[ref] {
			t.Errorf("failing test %s misses the failed-session line", tc.ID)
		}
	}
}

func TestCountsConsistency(t *testing.T) {
	_, m := build(t, scenario.Figure2())
	for _, l := range m.CoveredLines() {
		f, p := m.Counts(l)
		if f+p == 0 {
			t.Errorf("covered line %v has zero counts", l)
		}
		if f > m.TotalFailed() || p > m.TotalPassed() {
			t.Errorf("line %v counts (%d,%d) exceed totals", l, f, p)
		}
	}
}
