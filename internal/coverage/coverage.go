// Package coverage builds the test×line coverage matrix (the "spectrum")
// that spectrum-based fault localization consumes. Following the paper's
// §3.2/§4.1: each intent is a test case; a test covers the configuration
// lines executed by the derivations of its destination prefix (computed
// from provenance, as Y!/NetCov would) plus the dataplane lines its trace
// executed. Failing tests additionally cover negative provenance: the
// lines of sessions that failed to establish and the would-be origination
// sites of prefixes that were never injected.
package coverage

import (
	"sort"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/provenance"
	"acr/internal/verify"
)

// TestCoverage is one row of the spectrum.
type TestCoverage struct {
	ID    string
	Pass  bool
	Lines map[netcfg.LineRef]bool
}

// Matrix is the full spectrum.
type Matrix struct {
	Tests []TestCoverage
}

// TotalPassed counts passing tests.
func (m *Matrix) TotalPassed() int {
	n := 0
	for _, t := range m.Tests {
		if t.Pass {
			n++
		}
	}
	return n
}

// TotalFailed counts failing tests.
func (m *Matrix) TotalFailed() int { return len(m.Tests) - m.TotalPassed() }

// Counts returns (failed, passed) coverage counts for one line.
func (m *Matrix) Counts(l netcfg.LineRef) (failed, passed int) {
	for _, t := range m.Tests {
		if !t.Lines[l] {
			continue
		}
		if t.Pass {
			passed++
		} else {
			failed++
		}
	}
	return failed, passed
}

// CoveredLines returns every line covered by at least one test, sorted.
func (m *Matrix) CoveredLines() []netcfg.LineRef {
	seen := map[netcfg.LineRef]bool{}
	var out []netcfg.LineRef
	for _, t := range m.Tests {
		for l := range t.Lines {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Build constructs the spectrum from a verified outcome.
func Build(n *bgp.Net, g *provenance.Graph, rep *verify.Report) *Matrix {
	m := &Matrix{}
	failedSessionLines := n.FailedSessionLines()
	for _, v := range rep.Verdicts {
		tc := TestCoverage{ID: v.Intent.ID, Pass: v.Pass, Lines: map[netcfg.LineRef]bool{}}
		if v.Prefix.IsValid() {
			for _, l := range g.LinesForPrefix(v.Prefix) {
				tc.Lines[l] = true
			}
		}
		for _, l := range v.Lines() {
			tc.Lines[l] = true
		}
		if !v.Pass {
			// Negative provenance: explain absence.
			if !v.Prefix.IsValid() {
				for _, l := range bgp.MissingOriginLines(n, v.Intent.DstPrefix) {
					tc.Lines[l] = true
				}
			}
			for _, l := range failedSessionLines {
				tc.Lines[l] = true
			}
			if v.Intent.Kind == verify.Waypoint {
				// A bypassed waypoint implicates the PBR machinery along
				// the actual path: the rules that should have redirected
				// the flow live (or are missing) there.
				for _, tr := range v.Traces {
					for _, router := range tr.Path {
						addPBRShell(n, router, tc.Lines)
					}
				}
			}
		}
		m.Tests = append(m.Tests, tc)
	}
	return m
}

// addPBRShell marks the PBR binding and policy-header lines of a router.
func addPBRShell(n *bgp.Net, router string, lines map[netcfg.LineRef]bool) {
	r := n.Routers[router]
	if r == nil || r.File == nil {
		return
	}
	for _, itf := range r.File.Interfaces {
		if itf.PBRPolicy == "" {
			continue
		}
		lines[netcfg.LineRef{Device: router, Line: itf.PBRLine}] = true
		if pol := r.File.PBRPolicyByName(itf.PBRPolicy); pol != nil {
			lines[netcfg.LineRef{Device: router, Line: pol.Line}] = true
		}
	}
}
