// Package smt is a small finite-domain constraint solver standing in for
// Z3 in the paper's fix-generation stage (§4.2/§5 step 2): change
// templates introduce symbolic variables (a prefix-set in a prefix-list
// entry, an AS number in a peer stanza), constraints are collected from
// the provenance of passing and failing tests, and the solver finds an
// assignment satisfying P ∧ ¬F. Domains are finite and tiny — the
// prefixes and AS numbers that occur in the network — so a complete
// backtracking search with three-valued pruning returns the same
// assignments an SMT solver would, deterministically, preferring minimal
// prefix sets.
package smt

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Sort classifies variables.
type Sort uint8

// Variable sorts.
const (
	SortPrefixSet Sort = iota // a set of prefixes
	SortInt                   // a uint32 (AS numbers, ports)
	SortBool                  // a boolean (delta variables in the AED baseline)
)

// Var is a typed variable.
type Var struct {
	Name string
	Sort Sort
}

// PrefixSetVar declares a prefix-set variable.
func PrefixSetVar(name string) Var { return Var{Name: name, Sort: SortPrefixSet} }

// IntVar declares an integer variable.
func IntVar(name string) Var { return Var{Name: name, Sort: SortInt} }

// BoolVar declares a boolean variable.
func BoolVar(name string) Var { return Var{Name: name, Sort: SortBool} }

// Formula is a constraint over variables.
type Formula interface {
	fstring() string
}

type (
	inAtom struct {
		Prefix netip.Prefix
		Set    Var
	}
	eqIntAtom struct {
		Var   Var
		Value uint32
	}
	boolAtom  struct{ Var Var }
	notForm   struct{ F Formula }
	andForm   struct{ Fs []Formula }
	orForm    struct{ Fs []Formula }
	constForm struct{ V bool }
)

func (a inAtom) fstring() string    { return fmt.Sprintf("%s ∈ %s", a.Prefix, a.Set.Name) }
func (a eqIntAtom) fstring() string { return fmt.Sprintf("%s = %d", a.Var.Name, a.Value) }
func (a boolAtom) fstring() string  { return a.Var.Name }
func (f notForm) fstring() string   { return "¬(" + f.F.fstring() + ")" }
func (f constForm) fstring() string {
	if f.V {
		return "true"
	}
	return "false"
}
func (f andForm) fstring() string { return join(f.Fs, " ∧ ") }
func (f orForm) fstring() string  { return join(f.Fs, " ∨ ") }

func join(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.fstring()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// String renders a formula.
func String(f Formula) string { return f.fstring() }

// In asserts prefix ∈ set.
func In(p netip.Prefix, set Var) Formula { return inAtom{Prefix: p.Masked(), Set: set} }

// EqInt asserts v = value.
func EqInt(v Var, value uint32) Formula { return eqIntAtom{Var: v, Value: value} }

// IsTrue asserts a boolean variable.
func IsTrue(v Var) Formula { return boolAtom{Var: v} }

// Not negates.
func Not(f Formula) Formula { return notForm{F: f} }

// And conjoins (empty And is true).
func And(fs ...Formula) Formula { return andForm{Fs: fs} }

// Or disjoins (empty Or is false).
func Or(fs ...Formula) Formula { return orForm{Fs: fs} }

// Bool is a constant formula.
func Bool(v bool) Formula { return constForm{V: v} }

// Model is a satisfying assignment.
type Model struct {
	Sets  map[string][]netip.Prefix
	Ints  map[string]uint32
	Bools map[string]bool
}

// Set returns the value of a prefix-set variable.
func (m *Model) Set(name string) []netip.Prefix { return m.Sets[name] }

// Int returns the value of an integer variable.
func (m *Model) Int(name string) (uint32, bool) {
	v, ok := m.Ints[name]
	return v, ok
}

// BoolVal returns the value of a boolean variable.
func (m *Model) BoolVal(name string) bool { return m.Bools[name] }

// String renders the model deterministically.
func (m *Model) String() string {
	var parts []string
	names := make([]string, 0, len(m.Sets))
	for n := range m.Sets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ps := make([]string, len(m.Sets[n]))
		for i, p := range m.Sets[n] {
			ps[i] = p.String()
		}
		parts = append(parts, fmt.Sprintf("%s={%s}", n, strings.Join(ps, ",")))
	}
	names = names[:0]
	for n := range m.Ints {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, m.Ints[n]))
	}
	names = names[:0]
	for n := range m.Bools {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%v", n, m.Bools[n]))
	}
	return strings.Join(parts, " ")
}

// Problem holds variable domains.
type Problem struct {
	intDomains map[string][]uint32
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{intDomains: map[string][]uint32{}}
}

// IntDomain sets the candidate values of an integer variable; without one,
// the domain is the set of values mentioned in EqInt atoms over it.
func (p *Problem) IntDomain(v Var, values ...uint32) {
	p.intDomains[v.Name] = values
}

// decision is one decision variable of the search.
type decision struct {
	kind   Sort
	set    string       // SortPrefixSet: which set variable
	prefix netip.Prefix // SortPrefixSet: which membership
	name   string       // SortInt/SortBool variable name
	domain []uint32     // SortInt candidates
}

// assignment is the partial state during search.
type assignment struct {
	member map[string]map[netip.Prefix]int // -1 false, 0 unknown, 1 true
	ints   map[string]int64                // -1 unassigned, else value
	bools  map[string]int                  // -1/0/1 as member
}

// Solve finds a satisfying assignment, or reports unsatisfiability. The
// search prefers excluding prefixes from sets and assigns integers in
// domain order, making results minimal and deterministic. SolveStats
// counts the assignments explored (the "search space walked") for the
// Figure 3 comparison.
func (p *Problem) Solve(f Formula) (*Model, bool) {
	m, ok, _ := p.SolveCounted(f)
	return m, ok
}

// SolveCounted is Solve, also reporting the number of candidate
// assignments visited.
func (p *Problem) SolveCounted(f Formula) (*Model, bool, int) {
	decisions := p.collectDecisions(f)
	st := &assignment{
		member: map[string]map[netip.Prefix]int{},
		ints:   map[string]int64{},
		bools:  map[string]int{},
	}
	for _, d := range decisions {
		switch d.kind {
		case SortPrefixSet:
			if st.member[d.set] == nil {
				st.member[d.set] = map[netip.Prefix]int{}
			}
			st.member[d.set][d.prefix] = 0
		case SortInt:
			st.ints[d.name] = -1
		case SortBool:
			st.bools[d.name] = 0
		}
	}
	visited := 0
	var search func(i int) bool
	search = func(i int) bool {
		visited++
		switch eval(f, st) {
		case tvFalse:
			return false
		case tvTrue:
			// Satisfied regardless of the remaining unknowns; leave them
			// at their defaults (memberships excluded, ints unassigned).
			return true
		}
		if i >= len(decisions) {
			return false // fully assigned yet unknown: cannot happen
		}
		d := decisions[i]
		switch d.kind {
		case SortPrefixSet:
			for _, val := range []int{-1, 1} { // exclude first: minimal sets
				st.member[d.set][d.prefix] = val
				if search(i + 1) {
					return true
				}
			}
			st.member[d.set][d.prefix] = 0
		case SortInt:
			for _, val := range d.domain {
				st.ints[d.name] = int64(val)
				if search(i + 1) {
					return true
				}
			}
			st.ints[d.name] = -1
		case SortBool:
			for _, val := range []int{-1, 1} { // false first: minimal change sets
				st.bools[d.name] = val
				if search(i + 1) {
					return true
				}
			}
			st.bools[d.name] = 0
		}
		return false
	}
	if !search(0) {
		return nil, false, visited
	}
	model := &Model{Sets: map[string][]netip.Prefix{}, Ints: map[string]uint32{}, Bools: map[string]bool{}}
	for set, ms := range st.member {
		var ps []netip.Prefix
		for pfx, v := range ms {
			if v == 1 {
				ps = append(ps, pfx)
			}
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Addr() != ps[j].Addr() {
				return ps[i].Addr().Less(ps[j].Addr())
			}
			return ps[i].Bits() < ps[j].Bits()
		})
		model.Sets[set] = ps
	}
	for name, v := range st.ints {
		if v >= 0 {
			model.Ints[name] = uint32(v)
		}
	}
	for name, v := range st.bools {
		model.Bools[name] = v == 1
	}
	return model, true, visited
}

// collectDecisions walks the formula gathering decision variables in a
// deterministic order.
func (p *Problem) collectDecisions(f Formula) []decision {
	type memKey struct {
		set string
		pfx netip.Prefix
	}
	memSeen := map[memKey]bool{}
	intSeen := map[string]map[uint32]bool{}
	boolSeen := map[string]bool{}
	var order []decision
	var walk func(Formula)
	walk = func(f Formula) {
		switch a := f.(type) {
		case inAtom:
			k := memKey{a.Set.Name, a.Prefix}
			if !memSeen[k] {
				memSeen[k] = true
				order = append(order, decision{kind: SortPrefixSet, set: a.Set.Name, prefix: a.Prefix})
			}
		case eqIntAtom:
			if intSeen[a.Var.Name] == nil {
				intSeen[a.Var.Name] = map[uint32]bool{}
				order = append(order, decision{kind: SortInt, name: a.Var.Name})
			}
			intSeen[a.Var.Name][a.Value] = true
		case boolAtom:
			if !boolSeen[a.Var.Name] {
				boolSeen[a.Var.Name] = true
				order = append(order, decision{kind: SortBool, name: a.Var.Name})
			}
		case notForm:
			walk(a.F)
		case andForm:
			for _, sub := range a.Fs {
				walk(sub)
			}
		case orForm:
			for _, sub := range a.Fs {
				walk(sub)
			}
		}
	}
	walk(f)
	// Fill integer domains: explicit domain, else mentioned values.
	for i := range order {
		if order[i].kind != SortInt {
			continue
		}
		if dom, ok := p.intDomains[order[i].name]; ok && len(dom) > 0 {
			order[i].domain = dom
			continue
		}
		var vals []uint32
		for v := range intSeen[order[i].name] {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		order[i].domain = vals
	}
	return order
}

// Three-valued logic for pruning.
type tv int8

const (
	tvFalse   tv = -1
	tvUnknown tv = 0
	tvTrue    tv = 1
)

func eval(f Formula, st *assignment) tv {
	switch a := f.(type) {
	case constForm:
		if a.V {
			return tvTrue
		}
		return tvFalse
	case inAtom:
		return tv(st.member[a.Set.Name][a.Prefix])
	case eqIntAtom:
		v := st.ints[a.Var.Name]
		if v < 0 {
			return tvUnknown
		}
		if uint32(v) == a.Value {
			return tvTrue
		}
		return tvFalse
	case boolAtom:
		return tv(st.bools[a.Var.Name])
	case notForm:
		return -eval(a.F, st)
	case andForm:
		res := tvTrue
		for _, sub := range a.Fs {
			switch eval(sub, st) {
			case tvFalse:
				return tvFalse
			case tvUnknown:
				res = tvUnknown
			}
		}
		return res
	case orForm:
		res := tvFalse
		for _, sub := range a.Fs {
			switch eval(sub, st) {
			case tvTrue:
				return tvTrue
			case tvUnknown:
				res = tvUnknown
			}
		}
		return res
	}
	return tvUnknown
}
