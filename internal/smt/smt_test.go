package smt

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	pA = netip.MustParsePrefix("10.70.0.0/16")
	pB = netip.MustParsePrefix("10.0.0.0/16")
	pC = netip.MustParsePrefix("20.0.0.0/16")
)

// TestPaperExample solves exactly the §5 step-2 instance:
// P: 10.70/16 ∈ var ∧ 20.0/16 ∈ var, F: 10.0/16 ∈ var; solve P ∧ ¬F.
func TestPaperExample(t *testing.T) {
	v := PrefixSetVar("var")
	f := And(In(pA, v), In(pC, v), Not(In(pB, v)))
	model, ok := NewProblem().Solve(f)
	if !ok {
		t.Fatal("unsat; want {10.70/16, 20.0/16}")
	}
	got := model.Set("var")
	if len(got) != 2 || got[0] != pB.Masked() && got[0] != pA || got[1] != pC {
		// sorted: 10.70 < 20.0
		if len(got) != 2 || got[0] != pA || got[1] != pC {
			t.Fatalf("var = %v, want [10.70.0.0/16 20.0.0.0/16]", got)
		}
	}
}

func TestMinimality(t *testing.T) {
	v := PrefixSetVar("s")
	// Only pA forced in; pB and pC mentioned but unconstrained positives.
	f := And(In(pA, v), Or(In(pB, v), Not(In(pB, v))), Or(In(pC, v), Bool(true)))
	model, ok := NewProblem().Solve(f)
	if !ok {
		t.Fatal("unsat")
	}
	if got := model.Set("s"); len(got) != 1 || got[0] != pA {
		t.Fatalf("s = %v, want minimal [10.70.0.0/16]", got)
	}
}

func TestUnsat(t *testing.T) {
	v := PrefixSetVar("s")
	if _, ok := NewProblem().Solve(And(In(pA, v), Not(In(pA, v)))); ok {
		t.Fatal("contradiction reported sat")
	}
}

func TestIntVarFromMentionedValues(t *testing.T) {
	v := IntVar("asn")
	f := And(Or(EqInt(v, 65001), EqInt(v, 65002)), Not(EqInt(v, 65001)))
	model, ok := NewProblem().Solve(f)
	if !ok {
		t.Fatal("unsat")
	}
	if got, _ := model.Int("asn"); got != 65002 {
		t.Fatalf("asn = %d, want 65002", got)
	}
}

func TestIntVarExplicitDomain(t *testing.T) {
	v := IntVar("asn")
	p := NewProblem()
	p.IntDomain(v, 100, 200, 300)
	f := Not(EqInt(v, 100))
	model, ok := p.Solve(f)
	if !ok {
		t.Fatal("unsat")
	}
	if got, _ := model.Int("asn"); got != 200 {
		t.Fatalf("asn = %d, want 200 (first satisfying in domain order)", got)
	}
}

func TestBoolVars(t *testing.T) {
	a, b := BoolVar("a"), BoolVar("b")
	f := And(Or(IsTrue(a), IsTrue(b)), Not(IsTrue(a)))
	model, ok := NewProblem().Solve(f)
	if !ok {
		t.Fatal("unsat")
	}
	if model.BoolVal("a") || !model.BoolVal("b") {
		t.Fatalf("model = %s, want a=false b=true", model)
	}
}

func TestBoolMinimalChange(t *testing.T) {
	// Free bools default to false (minimal change sets for AED-style
	// delta variables).
	a, b := BoolVar("a"), BoolVar("b")
	f := Or(IsTrue(a), IsTrue(b), Bool(true))
	model, ok := NewProblem().Solve(f)
	if !ok {
		t.Fatal("unsat")
	}
	if model.BoolVal("a") || model.BoolVal("b") {
		t.Fatalf("model = %s, want all-false", model)
	}
}

func TestMixedSorts(t *testing.T) {
	s := PrefixSetVar("s")
	asn := IntVar("asn")
	d := BoolVar("delta")
	f := And(
		In(pA, s),
		Or(EqInt(asn, 65004), EqInt(asn, 64999)),
		Not(EqInt(asn, 64999)),
		Or(IsTrue(d), In(pC, s)),
	)
	model, ok := NewProblem().Solve(f)
	if !ok {
		t.Fatal("unsat")
	}
	if got, _ := model.Int("asn"); got != 65004 {
		t.Errorf("asn = %d", got)
	}
	// delta=false branch requires pC in s; false-first bool ordering
	// combined with exclude-first membership: membership decision for pC
	// comes first in the decision order, so the solver lands on the
	// assignment with pC excluded and delta=true... either way the formula
	// holds; just assert satisfaction semantics.
	if !(model.BoolVal("delta") || containsPrefix(model.Set("s"), pC)) {
		t.Errorf("disjunction unsatisfied in model %s", model)
	}
}

func containsPrefix(ps []netip.Prefix, p netip.Prefix) bool {
	for _, x := range ps {
		if x == p {
			return true
		}
	}
	return false
}

func TestSolveCountedReportsWork(t *testing.T) {
	v := PrefixSetVar("s")
	_, ok, visited := NewProblem().SolveCounted(And(In(pA, v), In(pB, v), In(pC, v)))
	if !ok || visited == 0 {
		t.Fatalf("ok=%v visited=%d", ok, visited)
	}
}

func TestFormulaString(t *testing.T) {
	v := PrefixSetVar("var")
	f := And(In(pA, v), Not(In(pB, v)))
	s := String(f)
	for _, want := range []string{"10.70.0.0/16 ∈ var", "¬(10.0.0.0/16 ∈ var)"} {
		if !contains(s, want) {
			t.Errorf("String(f) = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})())
}

// Property: any model returned satisfies the formula under strict
// evaluation.
func TestQuickModelsSatisfy(t *testing.T) {
	prefixes := []netip.Prefix{pA, pB, pC, netip.MustParsePrefix("30.0.0.0/8")}
	gen := func(rng *rand.Rand, depth int) Formula {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return In(prefixes[rng.Intn(len(prefixes))], PrefixSetVar("s"))
			case 1:
				return EqInt(IntVar("x"), uint32(rng.Intn(3)+1))
			default:
				return IsTrue(BoolVar("b"))
			}
		}
		switch rng.Intn(3) {
		case 0:
			return Not(genHelper(rng, depth-1))
		case 1:
			return And(genHelper(rng, depth-1), genHelper(rng, depth-1))
		default:
			return Or(genHelper(rng, depth-1), genHelper(rng, depth-1))
		}
	}
	genHelper = gen
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := gen(rng, 3)
		model, ok := NewProblem().Solve(f)
		if !ok {
			return true // unsat claims are not checked here
		}
		return evalModel(f, model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

var genHelper func(rng *rand.Rand, depth int) Formula

// evalModel evaluates strictly under a complete model (absent memberships
// and bools are false; absent ints equal nothing).
func evalModel(f Formula, m *Model) bool {
	switch a := f.(type) {
	case constForm:
		return a.V
	case inAtom:
		return containsPrefix(m.Set(a.Set.Name), a.Prefix)
	case eqIntAtom:
		v, ok := m.Int(a.Var.Name)
		return ok && v == a.Value
	case boolAtom:
		return m.BoolVal(a.Var.Name)
	case notForm:
		return !evalModel(a.F, m)
	case andForm:
		for _, sub := range a.Fs {
			if !evalModel(sub, m) {
				return false
			}
		}
		return true
	case orForm:
		for _, sub := range a.Fs {
			if evalModel(sub, m) {
				return true
			}
		}
		return false
	}
	return false
}

// Property: Solve is deterministic.
func TestQuickDeterministic(t *testing.T) {
	f := And(In(pA, PrefixSetVar("s")), Or(In(pB, PrefixSetVar("s")), In(pC, PrefixSetVar("s"))))
	m1, ok1 := NewProblem().Solve(f)
	m2, ok2 := NewProblem().Solve(f)
	if ok1 != ok2 || m1.String() != m2.String() {
		t.Fatalf("nondeterministic: %s vs %s", m1, m2)
	}
}
