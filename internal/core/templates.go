package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/smt"
	"acr/internal/verify"
)

// templateSource resolves the template library used when Options.Templates
// is nil. The registry (internal/tmplreg) installs its resolution at init,
// making the registry the engine's single template authority in every
// binary that links it; the raw builtin list is the bootstrap so core
// remains self-contained under isolated unit tests.
var templateSource = BuiltinTemplates

// SetTemplateSource installs the default template resolution. It exists
// for internal/tmplreg (called once from its init); installing any other
// source changes SearchDigest and therefore orphans existing journals.
func SetTemplateSource(f func() []Template) {
	if f != nil {
		templateSource = f
	}
}

// BuiltinTemplates returns the raw change-template structs: one family per
// misconfiguration class of Table 1, learned from the paper's historical
// incident study, in the engine's canonical application order. This is the
// bootstrap list — resolve templates through internal/tmplreg, which wraps
// each struct with its registry descriptor, instead of calling this
// directly.
func BuiltinTemplates() []Template {
	return []Template{
		SymbolizePrefixList{},
		AddRedistribute{},
		AddStaticOrigination{},
		AddPBRPermitRule{},
		RemovePBRRule{},
		AddPeerToGroup{},
		RemoveGroupMembership{},
		RemovePolicyAttach{},
		FixPeerASN{},
		AttachPolicyLikePeers{},
		CopyPolicyFromRole{},
	}
}

// --- Table 1: "Missing items in ip prefix-list" (and the Figure 2 repair) --

// SymbolizePrefixList is the paper's flagship template (§5 step 2): it
// symbolizes the membership of a prefix-list referenced at the suspicious
// line and solves P ∧ ¬F over the provenance-derived constraints.
type SymbolizePrefixList struct{}

// Name implements Template.
func (SymbolizePrefixList) Name() string { return "symbolize-prefix-list" }

// ErrorClass implements Template.
func (SymbolizePrefixList) ErrorClass() errclass.Class { return errclass.MissingPrefixListItem }

// Generate implements Template.
func (SymbolizePrefixList) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil {
		return nil
	}
	var out []Update
	for _, list := range listsAnchoredAt(f, line.Line) {
		want, ok, constraints := solveListValue(ctx, line.Device, list)
		if !ok {
			continue
		}
		edits := rewriteListEdits(f, list, want)
		if len(edits) == 0 {
			continue
		}
		out = append(out, Update{
			Edits: []netcfg.EditSet{{Device: line.Device, Edits: edits}},
			Desc:  describeEdits("symbolize-prefix-list["+list+"]", line, constraints),
		})
	}
	return out
}

// --- Table 1: "Missing redistribution of static route" ----------------------

// AddRedistribute inserts `redistribute static` into a bgp block that has
// static routes but no redistribution, when a failing test's destination
// is covered by one of those statics.
type AddRedistribute struct{}

// Name implements Template.
func (AddRedistribute) Name() string { return "add-redistribute-static" }

// ErrorClass implements Template.
func (AddRedistribute) ErrorClass() errclass.Class { return errclass.MissingRedistribution }

// Generate implements Template.
func (AddRedistribute) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil || f.BGP.Redistribute != nil || len(f.Statics) == 0 {
		return nil
	}
	switch Classify(f, line.Line) {
	case RoleStaticRoute, RoleBGPHeader, RolePeerASN:
	default:
		return nil
	}
	relevant := false
	for _, v := range ctx.FailingVerdicts() {
		for _, s := range f.Statics {
			if s.Prefix.IsValid() && v.Intent.DstPrefix.IsValid() && s.Prefix.Overlaps(v.Intent.DstPrefix) {
				relevant = true
			}
		}
	}
	if !relevant {
		return nil
	}
	return []Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
			netcfg.InsertBefore{At: f.BGP.End + 1, Text: " redistribute static"},
		}}},
		Desc: describeEdits("add-redistribute-static", line, ""),
	}}
}

// AddStaticOrigination inserts a static route (and relies on an existing
// `redistribute static`) for a failing destination prefix this device is
// the topological origin of — the complement of AddRedistribute when the
// static itself is the missing line.
type AddStaticOrigination struct{}

// Name implements Template.
func (AddStaticOrigination) Name() string { return "add-static-origination" }

// ErrorClass implements Template.
func (AddStaticOrigination) ErrorClass() errclass.Class { return errclass.MissingRedistribution }

// Generate implements Template.
func (AddStaticOrigination) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil || f.BGP.Redistribute == nil {
		return nil
	}
	switch Classify(f, line.Line) {
	case RoleRedistribute, RoleBGPHeader:
	default:
		return nil
	}
	cfg := ctx.Configs[line.Device]
	var out []Update
	for _, v := range ctx.FailingVerdicts() {
		if v.Prefix.IsValid() {
			continue // prefix exists somewhere; absence is not the issue
		}
		dst := v.Intent.DstPrefix.Masked()
		origin := ctx.Topo.OriginOfPrefix(dst)
		if origin == nil || origin.Name != line.Device {
			continue
		}
		covered := false
		for _, s := range f.Statics {
			if s.Prefix == dst {
				covered = true
			}
		}
		if covered {
			continue
		}
		out = append(out, Update{
			Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
				netcfg.InsertBefore{At: cfg.NumLines() + 1, Text: fmt.Sprintf("ip route static %s null0", dst)},
			}}},
			Desc: describeEdits("add-static-origination["+dst.String()+"]", line, ""),
		})
	}
	return out
}

// --- Table 1: "Missing permit rules in PBR" ---------------------------------

// AddPBRPermitRule inserts a permit rule steering a failing waypoint
// flow's header space to the waypoint, when the waypoint is adjacent.
type AddPBRPermitRule struct{}

// Name implements Template.
func (AddPBRPermitRule) Name() string { return "add-pbr-permit-rule" }

// ErrorClass implements Template.
func (AddPBRPermitRule) ErrorClass() errclass.Class { return errclass.MissingPBRPermit }

// Generate implements Template.
func (AddPBRPermitRule) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil {
		return nil
	}
	var pol *netcfg.PBRPolicy
	switch Classify(f, line.Line) {
	case RolePBRPolicy, RolePBRRule, RolePBRRuleBody:
		for _, p := range f.PBRPolicies {
			if line.Line >= p.Line && line.Line <= p.End {
				pol = p
			}
		}
	case RoleInterface:
		for _, itf := range f.Interfaces {
			if line.Line >= itf.Line && line.Line <= itf.End && itf.PBRPolicy != "" {
				pol = f.PBRPolicyByName(itf.PBRPolicy)
			}
		}
	}
	if pol == nil {
		return nil
	}
	var out []Update
	for _, v := range ctx.FailingVerdicts() {
		if v.Intent.Kind != verify.Waypoint || v.Intent.Via == "" {
			continue
		}
		// The waypoint must be adjacent to this device for a local
		// redirect to be expressible.
		var nh netip.Addr
		for _, adj := range ctx.Topo.Adjacencies(line.Device) {
			if adj.PeerNode == v.Intent.Via {
				nh = adj.PeerAddr
			}
		}
		if !nh.IsValid() {
			continue
		}
		idx := 1
		for _, r := range pol.Rules {
			if r.Index >= idx {
				idx = r.Index + 10
			}
		}
		dst := v.Intent.DstPrefix.Masked()
		rule := []netcfg.Edit{
			netcfg.InsertBefore{At: pol.Line + 1, Text: fmt.Sprintf(" rule %d permit", idx)},
			netcfg.InsertBefore{At: pol.Line + 1, Text: fmt.Sprintf("  match destination %s", dst)},
		}
		if v.Intent.DstPort != 0 {
			rule = append(rule, netcfg.InsertBefore{At: pol.Line + 1, Text: fmt.Sprintf("  match dst-port %d", v.Intent.DstPort)})
		}
		rule = append(rule, netcfg.InsertBefore{At: pol.Line + 1, Text: fmt.Sprintf("  apply next-hop %s", nh)})
		out = append(out, Update{
			Edits: []netcfg.EditSet{{Device: line.Device, Edits: rule}},
			Desc:  describeEdits("add-pbr-permit-rule["+dst.String()+"]", line, "via "+v.Intent.Via),
		})
	}
	return out
}

// --- Table 1: "Extra redirect rule in PBR" -----------------------------------

// RemovePBRRule deletes the PBR rule containing the suspicious line.
type RemovePBRRule struct{}

// Name implements Template.
func (RemovePBRRule) Name() string { return "remove-pbr-rule" }

// ErrorClass implements Template.
func (RemovePBRRule) ErrorClass() errclass.Class { return errclass.ExtraPBRRedirect }

// Generate implements Template.
func (RemovePBRRule) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil {
		return nil
	}
	switch Classify(f, line.Line) {
	case RolePBRRule, RolePBRRuleBody:
	default:
		return nil
	}
	for _, pol := range f.PBRPolicies {
		for _, r := range pol.Rules {
			if line.Line < r.Line || line.Line > r.End {
				continue
			}
			var edits []netcfg.Edit
			for l := r.Line; l <= r.End; l++ {
				edits = append(edits, netcfg.DeleteLine{At: l})
			}
			return []Update{{
				Edits: []netcfg.EditSet{{Device: line.Device, Edits: edits}},
				Desc:  describeEdits(fmt.Sprintf("remove-pbr-rule[%d]", r.Index), line, ""),
			}}
		}
	}
	return nil
}

// --- Table 1: "Missing peer group" -------------------------------------------

// AddPeerToGroup inserts group membership for an ungrouped peer, one
// candidate per existing group.
type AddPeerToGroup struct{}

// Name implements Template.
func (AddPeerToGroup) Name() string { return "add-peer-to-group" }

// ErrorClass implements Template.
func (AddPeerToGroup) ErrorClass() errclass.Class { return errclass.MissingPeerGroup }

// Generate implements Template.
func (AddPeerToGroup) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil || Classify(f, line.Line) != RolePeerASN {
		return nil
	}
	var peer *netcfg.Peer
	for _, p := range f.BGP.Peers {
		if p.ASNLine == line.Line {
			peer = p
		}
	}
	if peer == nil || peer.Group != "" {
		return nil
	}
	var out []Update
	for _, g := range f.BGP.Groups {
		out = append(out, Update{
			Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
				netcfg.InsertBefore{At: line.Line + 1, Text: fmt.Sprintf(" peer %s group %s", peer.Addr, g.Name)},
			}}},
			Desc: describeEdits("add-peer-to-group["+g.Name+"]", line, ""),
		})
	}
	return out
}

// --- Table 1: "Extra items in peer group" --------------------------------------

// RemoveGroupMembership deletes a `peer <ip> group <g>` line.
type RemoveGroupMembership struct{}

// Name implements Template.
func (RemoveGroupMembership) Name() string { return "remove-group-membership" }

// ErrorClass implements Template.
func (RemoveGroupMembership) ErrorClass() errclass.Class { return errclass.ExtraPeerGroupItem }

// Generate implements Template.
func (RemoveGroupMembership) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || Classify(f, line.Line) != RolePeerGroupMembership {
		return nil
	}
	return []Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{netcfg.DeleteLine{At: line.Line}}}},
		Desc:  describeEdits("remove-group-membership", line, ""),
	}}
}

// --- Table 1: "Fail to dis-enable route map" -----------------------------------

// RemovePolicyAttach deletes a route-policy attachment line (the leftover
// maintenance route-map case).
type RemovePolicyAttach struct{}

// Name implements Template.
func (RemovePolicyAttach) Name() string { return "remove-policy-attach" }

// ErrorClass implements Template.
func (RemovePolicyAttach) ErrorClass() errclass.Class { return errclass.LeftoverRouteMap }

// Generate implements Template.
func (RemovePolicyAttach) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || Classify(f, line.Line) != RolePolicyAttach {
		return nil
	}
	return []Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{netcfg.DeleteLine{At: line.Line}}}},
		Desc:  describeEdits("remove-policy-attach["+attachedPolicyAt(f, line.Line)+"]", line, ""),
	}}
}

// --- Table 1: "Override to wrong AS number" -------------------------------------

// FixPeerASN symbolizes the AS number of a failed session's peer stanza
// and solves it: the only satisfying value is the neighbor's actual AS.
type FixPeerASN struct{}

// Name implements Template.
func (FixPeerASN) Name() string { return "fix-peer-asn" }

// ErrorClass implements Template.
func (FixPeerASN) ErrorClass() errclass.Class { return errclass.WrongASNumber }

// Generate implements Template.
func (FixPeerASN) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil || Classify(f, line.Line) != RolePeerASN {
		return nil
	}
	var peer *netcfg.Peer
	for _, p := range f.BGP.Peers {
		if p.ASNLine == line.Line {
			peer = p
		}
	}
	if peer == nil {
		return nil
	}
	// Only failed sessions warrant an AS fix.
	failed := false
	for _, fs := range ctx.Net.Failed {
		if fs.Router == line.Device && fs.PeerAddr == peer.Addr {
			failed = true
		}
	}
	if !failed {
		return nil
	}
	var neighborASN uint32
	for _, adj := range ctx.Topo.Adjacencies(line.Device) {
		if adj.PeerAddr == peer.Addr {
			if nf := ctx.Files[adj.PeerNode]; nf != nil && nf.BGP != nil {
				neighborASN = nf.BGP.ASN
			}
		}
	}
	if neighborASN == 0 || neighborASN == peer.ASN {
		return nil
	}
	// The "solve": the session-establishment constraint asn = neighborASN.
	v := smt.IntVar("asn")
	p := smt.NewProblem()
	p.IntDomain(v, neighborASN)
	model, ok := p.Solve(smt.EqInt(v, neighborASN))
	if !ok {
		return nil
	}
	asn, _ := model.Int("asn")
	return []Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
			netcfg.ReplaceLine{At: line.Line, Text: fmt.Sprintf(" peer %s as-number %d", peer.Addr, asn)},
		}}},
		Desc: describeEdits(fmt.Sprintf("fix-peer-asn[%d]", asn), line, ""),
	}}
}

// --- Table 1: "Missing a routing policy" (two plastic-surgery variants) ---------

// AttachPolicyLikePeers attaches a policy to a group the way same-role
// devices do — the plastic surgery hypothesis (§6): devices sharing a role
// share configuration shape, so a missing attachment is reconstructed
// from a role peer.
type AttachPolicyLikePeers struct{}

// Name implements Template.
func (AttachPolicyLikePeers) Name() string { return "attach-policy-like-peers" }

// ErrorClass implements Template.
func (AttachPolicyLikePeers) ErrorClass() errclass.Class { return errclass.MissingRoutingPolicy }

// Generate implements Template.
func (AttachPolicyLikePeers) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || f.BGP == nil {
		return nil
	}
	switch Classify(f, line.Line) {
	case RoleGroupDecl, RolePeerASN, RolePeerGroupMembership, RoleBGPHeader:
	default:
		return nil
	}
	kind := ctx.Topo.Node(line.Device).Kind
	have := map[string]bool{}
	for _, g := range f.BGP.Groups {
		for _, a := range g.Policies {
			have[g.Name+"|"+a.Policy+"|"+a.Direction.String()] = true
		}
	}
	defined := map[string]bool{}
	for _, p := range f.Policies {
		defined[p.Name] = true
	}
	seen := map[string]bool{}
	var out []Update
	for _, other := range ctx.Topo.Nodes() {
		if other.Name == line.Device || other.Kind != kind {
			continue
		}
		of := ctx.Files[other.Name]
		if of == nil || of.BGP == nil {
			continue
		}
		for _, og := range of.BGP.Groups {
			myGroup := f.GroupByName(og.Name)
			if myGroup == nil {
				continue
			}
			for _, a := range og.Policies {
				key := og.Name + "|" + a.Policy + "|" + a.Direction.String()
				if have[key] || seen[key] || !defined[a.Policy] {
					continue
				}
				seen[key] = true
				out = append(out, Update{
					Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
						netcfg.InsertBefore{
							At:   f.BGP.End + 1,
							Text: netcfg.FormatGroupPolicyLine(og.Name, a.Policy, a.Direction),
						},
					}}},
					Desc: describeEdits("attach-policy-like-peers["+a.Policy+"]", line, "copied from "+other.Name),
				})
			}
		}
	}
	return out
}

// CopyPolicyFromRole reconstructs a missing route-policy definition (a
// dangling attachment) by copying the policy block — and the prefix-lists
// it matches — from a same-role device that defines it.
type CopyPolicyFromRole struct{}

// Name implements Template.
func (CopyPolicyFromRole) Name() string { return "copy-policy-from-role" }

// ErrorClass implements Template.
func (CopyPolicyFromRole) ErrorClass() errclass.Class { return errclass.MissingRoutingPolicy }

// Generate implements Template.
func (CopyPolicyFromRole) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	if f == nil || Classify(f, line.Line) != RolePolicyAttach {
		return nil
	}
	name := attachedPolicyAt(f, line.Line)
	if name == "" || len(f.PolicyNodes(name)) > 0 {
		return nil // defined; nothing to copy
	}
	kind := ctx.Topo.Node(line.Device).Kind
	cfg := ctx.Configs[line.Device]
	for _, other := range ctx.Topo.Nodes() {
		if other.Name == line.Device || other.Kind != kind {
			continue
		}
		of := ctx.Files[other.Name]
		if of == nil || len(of.PolicyNodes(name)) == 0 {
			continue
		}
		ocfg := ctx.Configs[other.Name]
		var lines []string
		listsNeeded := map[string]bool{}
		for _, node := range of.PolicyNodes(name) {
			for l := node.Line; l <= node.End; l++ {
				lines = append(lines, ocfg.Line(l))
			}
			for _, m := range node.Matches {
				if m.Kind == netcfg.MatchIPPrefix && len(f.PrefixListEntries(m.PrefixList)) == 0 {
					listsNeeded[m.PrefixList] = true
				}
			}
		}
		// Sorted: the copied entries become candidate text, and candidate
		// text must not depend on map iteration order.
		lists := make([]string, 0, len(listsNeeded))
		for list := range listsNeeded {
			lists = append(lists, list)
		}
		sort.Strings(lists)
		for _, list := range lists {
			for _, e := range of.PrefixListEntries(list) {
				lines = append(lines, ocfg.Line(e.Line))
			}
		}
		var edits []netcfg.Edit
		at := cfg.NumLines() + 1
		for _, text := range lines {
			edits = append(edits, netcfg.InsertBefore{At: at, Text: text})
		}
		return []Update{{
			Edits: []netcfg.EditSet{{Device: line.Device, Edits: edits}},
			Desc:  describeEdits("copy-policy-from-role["+name+"]", line, "copied from "+other.Name),
		}}
	}
	return nil
}

// templateNames renders the registry for documentation.
func templateNames(ts []Template) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name()
	}
	return strings.Join(names, ", ")
}
