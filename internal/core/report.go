package core

import (
	"fmt"
	"sort"
	"strings"

	"acr/internal/netcfg"
)

// Report renders a human-readable post-mortem of a repair run: what
// failed, what the localizer pointed at, which templates were applied,
// and the final configuration diff. The base configurations are needed to
// quote line text in the localization table.
func (r *Result) Report(baseConfigs map[string]*netcfg.Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Repair report\n\n")
	status := "FEASIBLE UPDATE FOUND"
	if !r.Feasible {
		status = "NO FEASIBLE UPDATE (" + r.Termination + ")"
	}
	fmt.Fprintf(&sb, "result: %s\n", status)
	fmt.Fprintf(&sb, "failing tests before repair: %d\n", r.BaseFailing)
	if !r.Feasible && r.BestEffortConfigs != nil {
		if r.Improved {
			fmt.Fprintf(&sb, "best effort: %d failing tests (down from %d) — partial repair available\n",
				r.BestEffortFitness, r.BaseFailing)
		} else {
			fmt.Fprintf(&sb, "best effort: no improvement over the base configuration\n")
		}
	}
	if r.CandidatesPanicked > 0 || r.CandidatesTimedOut > 0 || r.ValidationRetries > 0 {
		fmt.Fprintf(&sb, "quarantined: %d panicked, %d timed out; validation retries: %d\n",
			r.CandidatesPanicked, r.CandidatesTimedOut, r.ValidationRetries)
	}
	if r.StaticDiagnostics > 0 {
		fmt.Fprintf(&sb, "static analysis: %d diagnostics, %d uncovered lines seeded, %d template applications pruned\n",
			r.StaticDiagnostics, r.PriorSeededLines, r.TemplatesPrunedStatic)
	}
	fmt.Fprintf(&sb, "iterations: %d  candidates validated: %d  prefix simulations: %d  intent checks: %d\n",
		r.Iterations, r.CandidatesValidated, r.PrefixSimulations, r.IntentChecks)
	if r.StaticallyRefuted+r.ImpactScoped+r.ImpactBroad > 0 {
		fmt.Fprintf(&sb, "impact analysis: %d statically refuted, %d scoped, %d broad, %d leaf-derived prefixes\n",
			r.StaticallyRefuted, r.ImpactScoped, r.ImpactBroad, r.LeafDerivations)
	}
	if r.DeltaReused+r.DeltaResimulated+r.SimActivations > 0 {
		fmt.Fprintf(&sb, "delta simulation: %d prefixes reused, %d resimulated, %d router activations\n",
			r.DeltaReused, r.DeltaResimulated, r.SimActivations)
	}
	fmt.Fprintf(&sb, "cache: %d hits, %d misses  validation workers: %d\n",
		r.CacheHits, r.CacheMisses, r.ParallelWorkers)
	if r.StoreHits+r.StoreMisses+r.StoreCorrupt > 0 {
		fmt.Fprintf(&sb, "persistent store: %d hits, %d misses, %d corrupt entries quarantined\n",
			r.StoreHits, r.StoreMisses, r.StoreCorrupt)
	}
	sb.WriteByte('\n')

	if len(r.Logs) > 0 {
		fmt.Fprintf(&sb, "## Iterations\n\n")
		fmt.Fprintf(&sb, "%4s %10s %10s %6s %12s\n", "iter", "generated", "validated", "kept", "best fitness")
		for _, lg := range r.Logs {
			fmt.Fprintf(&sb, "%4d %10d %10d %6d %12d\n", lg.Iteration, lg.Generated, lg.Validated, lg.Kept, lg.BestFitness)
		}
		sb.WriteByte('\n')
		// Localization snapshot of the first iteration.
		first := r.Logs[0]
		if len(first.TopSuspicious) > 0 {
			fmt.Fprintf(&sb, "## Most suspicious lines (iteration 1)\n\n")
			for _, s := range first.TopSuspicious {
				text := ""
				if cfg := baseConfigs[s.Line.Device]; cfg != nil && s.Line.Line >= 1 && s.Line.Line <= cfg.NumLines() {
					text = strings.TrimSpace(cfg.Line(s.Line.Line))
				}
				fmt.Fprintf(&sb, "  %-14s susp=%.3f (failed=%d passed=%d)  %s\n",
					s.Line, s.Susp, s.Failed, s.Passed, text)
			}
			sb.WriteByte('\n')
		}
	}

	if len(r.Applied) > 0 {
		fmt.Fprintf(&sb, "## Applied template instances\n\n")
		for i, a := range r.Applied {
			fmt.Fprintf(&sb, "  %d. %s\n", i+1, a)
		}
		sb.WriteByte('\n')
	}
	if len(r.Diffs) > 0 {
		fmt.Fprintf(&sb, "## Configuration changes\n\n")
		for _, d := range r.Diffs {
			sb.WriteString(d)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Canonical renders every deterministic field of the Result — the fixed
// configurations, fitness trajectory, applied templates, and all search
// counters — as one comparable string. Two runs of the same problem, seed,
// and options produce identical Canonical output even when one of them was
// killed and resumed from the journal; that invariant is what the crash
// harness asserts. Wall-clock time, stored error details, and the
// Resumed markers are excluded: they legitimately differ across an
// interruption.
func (r *Result) Canonical() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "feasible=%v termination=%s iterations=%d baseFailing=%d\n",
		r.Feasible, r.Termination, r.Iterations, r.BaseFailing)
	// PrefixSimulations/IntentChecks (and the impact-analysis counters)
	// are deliberately absent: they measure how much work validation did,
	// not what it decided. The impact-scoped and -no-impact paths agree on
	// every fitness — and therefore on everything in this string — while
	// doing very different amounts of simulation; the `-no-impact`
	// byte-identity ablation is how tests enforce that agreement. The
	// delta counters (DeltaReused/DeltaResimulated/SimActivations) are
	// absent for the same reason: a delta run and a `-no-delta` run reach
	// every fixpoint and verdict identically, differing only in how many
	// router activations it took to get there.
	fmt.Fprintf(&sb, "validated=%d\n", r.CandidatesValidated)
	fmt.Fprintf(&sb, "static: diags=%d seeded=%d pruned=%d\n",
		r.StaticDiagnostics, r.PriorSeededLines, r.TemplatesPrunedStatic)
	fmt.Fprintf(&sb, "quarantine: panicked=%d timedOut=%d retries=%d\n",
		r.CandidatesPanicked, r.CandidatesTimedOut, r.ValidationRetries)
	// ParallelWorkers is deliberately absent: the worker count must not
	// change the result, and this line is how tests enforce that.
	// StoreHits/StoreMisses/StoreCorrupt are deliberately absent too: the
	// persistent store only moves evaluations between "simulated" and
	// "read from disk", so a warm, cold, faulty, or absent store must
	// produce this exact string — the storage-chaos harness asserts it.
	fmt.Fprintf(&sb, "cache: hits=%d misses=%d\n", r.CacheHits, r.CacheMisses)
	for _, a := range r.Applied {
		fmt.Fprintf(&sb, "applied %s\n", a)
	}
	for _, d := range r.Diffs {
		fmt.Fprintf(&sb, "diff %s\n", d)
	}
	writeConfigs := func(label string, configs map[string]*netcfg.Config) {
		devices := make([]string, 0, len(configs))
		for d := range configs {
			devices = append(devices, d)
		}
		sort.Strings(devices)
		for _, d := range devices {
			fmt.Fprintf(&sb, "%s %s\n%s", label, d, configs[d].Text())
		}
	}
	writeConfigs("final", r.FinalConfigs)
	fmt.Fprintf(&sb, "bestEffort fitness=%d improved=%v applied=%s\n",
		r.BestEffortFitness, r.Improved, strings.Join(r.BestEffortApplied, "|"))
	writeConfigs("bestEffort", r.BestEffortConfigs)
	for _, l := range r.Logs {
		fmt.Fprintf(&sb, "iter=%d generated=%d validated=%d kept=%d bestFitness=%d top=",
			l.Iteration, l.Generated, l.Validated, l.Kept, l.BestFitness)
		for _, s := range l.TopSuspicious {
			fmt.Fprintf(&sb, "%s:%g,%d,%d,%g;", s.Line, s.Susp, s.Failed, s.Passed, s.Prior)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
