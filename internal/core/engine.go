package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"acr/internal/bgp"
	"acr/internal/journal"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/verify"
)

// Strategy selects how candidates are generated from the suspicious set
// (§4.2 "Generation strategy").
type Strategy uint8

// Generation strategies.
const (
	// Evolutionary samples template applications randomly per preserved
	// update and merges disjoint candidates (single-point crossover in
	// edit space) — the paper's search-based strategy.
	Evolutionary Strategy = iota
	// BruteForce applies every template to every suspicious statement —
	// the Cartesian-product strategy.
	BruteForce
)

// FaultInjector is the chaos seam at the engine's validation boundary.
// Production runs leave Options.Chaos nil; the chaos harness
// (internal/chaos) implements this to inject transient and fatal faults
// before validator invocations.
type FaultInjector interface {
	// BeforeValidate runs before each validator invocation (including
	// retries) and may return an error to inject. Errors advertising
	// Transient() get the engine's retry-with-backoff treatment.
	BeforeValidate() error
}

// Options tunes the engine. Zero values select the paper's defaults.
type Options struct {
	Formula       sbfl.Formula // default Tarantula
	MaxIterations int          // default 500 (the paper's cap)
	MinSusp       float64      // suspiciousness threshold, default 0.45
	TopKLines     int          // suspicious lines considered per version, default 24
	PopulationCap int          // preserved updates carried per iteration, default 8
	CandidateCap  int          // validated candidates per iteration, default 64
	SampleSize    int          // evolutionary: proposals sampled per member, default 16
	Strategy      Strategy
	Seed          int64
	Templates     []Template
	SimOpts       bgp.Options
	// FullValidation disables the incremental verifier (ablation).
	FullValidation bool
	// NoStaticPrior disables the static-analysis localization prior
	// (ablation): no diagnostic-boosted ranking, no seeded uncovered
	// lines, no template pruning at diagnosed lines.
	NoStaticPrior bool

	// --- performance ----------------------------------------------------

	// Parallelism is the number of workers validating candidates
	// concurrently (default runtime.GOMAXPROCS(0); 1 runs serially).
	// Outcomes merge in proposal order on a single goroutine, so the
	// Result — including Canonical() — is byte-identical at every level;
	// only wall-clock-dependent quarantines (CandidateTimeout) and runs
	// with a chaos injector wired (which forces one worker, because
	// injection is call-order-dependent) can observe the difference.
	Parallelism int
	// NoCache disables the content-addressed evaluation cache (ablation):
	// duplicate proposals across iterations, widening rounds, and resumed
	// sessions are re-simulated instead of answered from the cache.
	// The setting is part of SearchDigest: a cached and an uncached run
	// count differently, so a journaled session must resume under the
	// same setting.
	NoCache bool
	// NoImpact disables the static impact analysis in the incremental
	// verifier (ablation): candidates are scoped by the original
	// line/literal dependency heuristic and nothing is statically
	// refuted. The search trajectory — fitness per candidate, hence the
	// Canonical() result — is identical either way; only the work
	// counters differ, so the setting is part of SearchDigest for the
	// same reason NoCache is.
	NoImpact bool
	// ImpactDifferential replays every pruned validation against a
	// from-scratch full check and fails the run with termination
	// "impact-divergence" if any intent verdict differs — the soundness
	// enforcement mode the corpus CI job runs under. Purely observational
	// on a sound analysis, so it is excluded from SearchDigest.
	ImpactDifferential bool
	// NoDelta disables delta re-simulation in the incremental verifier
	// (ablation): every needed prefix simulation runs from a cold start
	// instead of propagating from the edited devices over the base
	// outcome. The search trajectory — and Canonical() — is identical
	// either way; only the work counters differ, so the setting is part
	// of SearchDigest for the same reason NoImpact is.
	NoDelta bool
	// DeltaDifferential replays every delta-simulated prefix against a
	// cold full simulation and fails the run with termination
	// "delta-divergence" if the fixpoints differ — the soundness
	// enforcement mode the delta-soundness CI job runs under. Purely
	// observational on a sound delta, so excluded from SearchDigest.
	DeltaDifferential bool
	// NoBatch disables the sibling-batch parse memo: each candidate in a
	// dispatch group re-parses its post-edit configurations instead of
	// sharing parses with siblings that produced identical text. Purely a
	// cache of a deterministic function — verdicts, trajectory, and every
	// counter are identical — so it is excluded from SearchDigest (like
	// Parallelism: scheduling detail, not search input).
	NoBatch bool
	// Store, when non-nil, is the persistent content-addressed evaluation
	// store layered under the in-memory cache (internal/evalstore): digests
	// the cache misses are looked up there before simulating, and freshly
	// simulated fitness values are written back. Because fitness is a pure
	// function of the configuration set, a store answer replaces only the
	// simulation, never the decision — Canonical() output is byte-identical
	// with a cold, warm, corrupt, or absent store. The store is therefore
	// excluded from SearchDigest (like Parallelism): a journaled session
	// may resume on a machine with a different -cache-dir, a different
	// budget, or no store at all. NoCache severs the store too.
	Store EvalStore

	// --- robustness -----------------------------------------------------

	// Deadline, when set, bounds the run by wall-clock time; the engine
	// stops cooperatively and returns the best-effort repair with
	// Termination "deadline".
	Deadline time.Time
	// MaxWallClock, when positive, bounds the run by a duration measured
	// from the RepairContext call. Combined with Deadline, the earlier
	// bound wins.
	MaxWallClock time.Duration
	// CandidateTimeout, when positive, bounds each candidate's validation;
	// a candidate that exceeds it is skipped (counted in
	// CandidatesTimedOut) without ending the run.
	CandidateTimeout time.Duration
	// MaxValidationRetries bounds retries of transient validator faults
	// per candidate (default 2). Retries back off exponentially starting
	// at RetryBackoff.
	MaxValidationRetries int
	// RetryBackoff is the initial backoff between transient-fault retries
	// (default 1ms, doubling per retry).
	RetryBackoff time.Duration
	// Chaos, when non-nil, injects faults at the validation boundary
	// (testing only).
	Chaos FaultInjector

	// --- durability -----------------------------------------------------

	// Journal, when non-nil, receives the run's durable event stream:
	// per-candidate and per-iteration events, periodic full checkpoints,
	// and a terminal record on graceful exit. Create it with
	// journal.Create (fresh session) or journal.Resume (continuation).
	// Journal append failures degrade to in-memory operation (recorded as
	// KindJournal errors); they never fail the run.
	Journal *journal.Writer
	// Resume, when non-nil, restores the run from a replayed session
	// instead of starting from the base configuration version. The
	// session's digests must match this problem and these options; on any
	// mismatch the engine records a KindJournal error and runs fresh.
	// Because every random stream is derived from (Seed, iteration) and
	// (Seed, version), a resumed run continues exactly where the
	// journaled one left off and produces the same Result as an
	// uninterrupted run (compare with Result.Canonical).
	Resume *journal.Session
	// CheckpointEvery is the full-checkpoint cadence in iterations
	// (default 1: every iteration boundary is a restart point). Raising
	// it trades recovery granularity for journal bandwidth.
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.Formula.Fn == nil {
		o.Formula = sbfl.Tarantula
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 500
	}
	if o.MinSusp == 0 {
		o.MinSusp = 0.45
	}
	if o.TopKLines <= 0 {
		o.TopKLines = 24
	}
	if o.PopulationCap <= 0 {
		o.PopulationCap = 8
	}
	if o.CandidateCap <= 0 {
		o.CandidateCap = 64
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 16
	}
	if o.Templates == nil {
		o.Templates = templateSource()
	}
	if o.MaxValidationRetries <= 0 {
		o.MaxValidationRetries = 2
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	return o
}

// IterationLog records one localize-fix-validate round.
type IterationLog struct {
	Iteration int
	// Generated counts candidate updates produced by templates — the size
	// of this iteration's search space (the leaf nodes of the search
	// forest, Figure 3c).
	Generated int
	// Validated counts candidates actually checked (after dedup and caps).
	Validated int
	// Kept counts candidates preserved for the next iteration.
	Kept int
	// BestFitness is the lowest failing-test count seen this iteration.
	BestFitness int
	// TopSuspicious snapshots the head of the ranking (for reports).
	TopSuspicious []sbfl.Score
}

// Result is the outcome of a repair run.
type Result struct {
	Feasible bool
	// FinalConfigs are the repaired configurations (the base ones when
	// infeasible).
	FinalConfigs map[string]*netcfg.Config
	// Applied describes the template applications of the feasible update,
	// in order.
	Applied []string
	// Diffs renders per-device diffs of the feasible update.
	Diffs []string
	// Iterations actually executed.
	Iterations int
	// BaseFailing is the failing-test count before repair.
	BaseFailing int
	// Termination explains why the run ended: "feasible", "exhausted"
	// (S = ∅), "iteration-cap", "deadline", or "canceled".
	Termination string
	Logs        []IterationLog
	// CandidatesValidated counts candidates resolved by validation —
	// simulated or answered from the evaluation cache (it equals
	// CacheHits+CacheMisses when the cache is enabled).
	CandidatesValidated int
	// PrefixSimulations counts per-prefix control-plane runs performed by
	// validation (the incremental verifier's and the cache's savings show
	// up here).
	PrefixSimulations int
	// IntentChecks counts intent re-verifications.
	IntentChecks int

	// --- performance ----------------------------------------------------

	// CacheHits counts candidates answered by the content-addressed
	// evaluation cache without simulation (0 with Options.NoCache).
	CacheHits int
	// CacheMisses counts candidates that were simulated and then stored.
	CacheMisses int
	// ParallelWorkers is the effective validation worker count the run
	// used (1 when a chaos injector forced serial execution). It is
	// excluded from Canonical(): runs at different parallelism produce
	// identical results.
	ParallelWorkers int

	// --- persistent evaluation store ------------------------------------
	//
	// Cost counters of the disk-backed store (all 0 without Options.Store).
	// Like PrefixSimulations and the impact counters they measure how much
	// work was avoided or lost, not what the search decided, and are
	// excluded from Canonical() and from checkpoints: a warm store, a
	// corrupted store, and no store at all produce byte-identical results.

	// StoreHits counts candidates whose simulation was skipped because the
	// persistent store held a verified entry for their digest. Each one is
	// still accounted as an in-memory CacheMiss — exactly what a cold run
	// would have recorded after simulating.
	StoreHits int
	// StoreMisses counts in-memory cache misses the store could not answer
	// (absent, evicted, I/O failure, or corrupt entry); these candidates
	// were simulated and written back.
	StoreMisses int
	// StoreCorrupt counts store entries that failed integrity verification
	// (CRC, framing, or digest mismatch) during this run; each was
	// quarantined by the store and degraded to a StoreMiss.
	StoreCorrupt int

	// --- static impact analysis -----------------------------------------
	//
	// Work counters of the candidate impact analysis (all 0 with
	// Options.NoImpact or FullValidation). Like PrefixSimulations they
	// measure effort, not trajectory, and are excluded from Canonical().

	// StaticallyRefuted counts candidates whose impact set was disjoint
	// from every intent's dependencies: answered with the parent's
	// verdicts at zero prefix simulations.
	StaticallyRefuted int
	// ImpactScoped counts candidates validated against a proper impact
	// slice (neither refuted nor broad).
	ImpactScoped int
	// ImpactBroad counts candidates where the impact analysis — or the
	// compiled-network cross-check guarding it — degraded to a full
	// re-simulation.
	ImpactBroad int
	// LeafDerivations counts prefixes whose candidate outcome was patched
	// from the parent outcome via leaf re-derivation (bgp.RederiveLeaves)
	// instead of a full prefix simulation. Each one is a simulation the
	// leaf-local refinement avoided beyond what slice scoping alone saves.
	LeafDerivations int

	// --- delta re-simulation --------------------------------------------
	//
	// Work counters of the delta BGP simulator (all 0 with
	// Options.NoDelta or FullValidation). Like the impact counters they
	// measure effort, not trajectory, and are excluded from Canonical():
	// a delta run and a -no-delta run decide identically.

	// DeltaReused counts prefix evaluations answered by delta
	// re-simulation: seeded from the parent outcome, only the edit's wave
	// of routers re-activated.
	DeltaReused int
	// DeltaResimulated counts prefix evaluations where the delta path
	// refused the shortcut (non-converged base, new origination, pass
	// bound) and a cold simulation ran instead.
	DeltaResimulated int
	// SimActivations totals router activations across every prefix
	// simulation of the run — the device·prefix work unit the delta
	// benchmark's ≥5× reduction target is measured in.
	SimActivations int

	// --- static-analysis prior ------------------------------------------

	// StaticDiagnostics counts the static-analysis findings on the base
	// configuration version (0 when the prior is disabled or clean).
	StaticDiagnostics int
	// PriorSeededLines counts statically flagged lines not covered by any
	// sampled test that the prior injected into the base ranking.
	PriorSeededLines int
	// TemplatesPrunedStatic counts template applications skipped because
	// the anchor line carried a diagnostic of a different error class.
	TemplatesPrunedStatic int

	// --- robustness -----------------------------------------------------

	// BestEffortConfigs is the best configuration version the run saw:
	// the feasible update when one was found, otherwise the validated
	// candidate with the fewest failing intents (the base configs when
	// nothing improved). A run interrupted by a deadline still hands the
	// operator a partial repair that strictly reduces failing intents
	// whenever Improved is true.
	BestEffortConfigs map[string]*netcfg.Config
	// BestEffortFitness is the failing-intent count of BestEffortConfigs.
	BestEffortFitness int
	// BestEffortApplied narrates the template applications producing
	// BestEffortConfigs.
	BestEffortApplied []string
	// Improved reports BestEffortFitness < BaseFailing.
	Improved bool
	// CandidatesPanicked counts candidates quarantined because a template,
	// parser edit, or simulator panicked while processing them.
	CandidatesPanicked int
	// CandidatesTimedOut counts candidates skipped by CandidateTimeout.
	CandidatesTimedOut int
	// ValidationRetries counts transient-fault retries at the validation
	// boundary.
	ValidationRetries int
	// Errors collects classified failures (capped; counters above are
	// complete).
	Errors []*RepairError
	// WallClock is the measured run duration.
	WallClock time.Duration

	// --- durability -----------------------------------------------------

	// Resumed reports the run was restored from a journal checkpoint.
	Resumed bool
	// ResumedFrom is the iteration the restored checkpoint closed
	// (0 = resumed from the base snapshot). Meaningful only when Resumed.
	ResumedFrom int
}

// Summary renders the result for CLI reports.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "feasible=%v termination=%s iterations=%d baseFailing=%d validated=%d\n",
		r.Feasible, r.Termination, r.Iterations, r.BaseFailing, r.CandidatesValidated)
	if !r.Feasible {
		fmt.Fprintf(&sb, "  best-effort: fitness=%d improved=%v\n", r.BestEffortFitness, r.Improved)
	}
	if r.CandidatesPanicked+r.CandidatesTimedOut+r.ValidationRetries > 0 {
		fmt.Fprintf(&sb, "  quarantined: panicked=%d timedOut=%d transientRetries=%d\n",
			r.CandidatesPanicked, r.CandidatesTimedOut, r.ValidationRetries)
	}
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&sb, "  cache: hits=%d misses=%d workers=%d\n",
			r.CacheHits, r.CacheMisses, r.ParallelWorkers)
	}
	if r.StoreHits+r.StoreMisses+r.StoreCorrupt > 0 {
		fmt.Fprintf(&sb, "  store: hits=%d misses=%d corrupt=%d\n",
			r.StoreHits, r.StoreMisses, r.StoreCorrupt)
	}
	if r.StaticallyRefuted+r.ImpactScoped+r.ImpactBroad > 0 {
		fmt.Fprintf(&sb, "  impact: refuted=%d scoped=%d broad=%d leafDerived=%d\n",
			r.StaticallyRefuted, r.ImpactScoped, r.ImpactBroad, r.LeafDerivations)
	}
	if r.DeltaReused+r.DeltaResimulated+r.SimActivations > 0 {
		fmt.Fprintf(&sb, "  delta: reused=%d resimulated=%d activations=%d\n",
			r.DeltaReused, r.DeltaResimulated, r.SimActivations)
	}
	if r.StaticDiagnostics > 0 {
		fmt.Fprintf(&sb, "  static prior: diagnostics=%d seededLines=%d templatesPruned=%d\n",
			r.StaticDiagnostics, r.PriorSeededLines, r.TemplatesPrunedStatic)
	}
	for _, a := range r.Applied {
		fmt.Fprintf(&sb, "  applied: %s\n", a)
	}
	return sb.String()
}

// candidate is one preserved update: materialized configurations plus the
// verification/localization state built on them.
type candidate struct {
	configs map[string]*netcfg.Config
	iv      *verify.Incremental
	ctx     *Context
	fitness int
	descs   []string
}

// proposal is a not-yet-preserved candidate update.
type proposal struct {
	parent  *candidate
	update  Update
	fitness int
}

// errQuarantined marks a candidate removed from the search (panic or
// per-candidate timeout) without ending the run.
var errQuarantined = fmt.Errorf("candidate quarantined")

// Repair runs localize–fix–validate (Figure 4) until a feasible update is
// found, candidates are exhausted, or the iteration cap is hit.
func Repair(p Problem, opts Options) *Result {
	return RepairContext(context.Background(), p, opts)
}

// RepairContext is Repair with cooperative cancellation and wall-clock
// bounds. The context is checked in every hot loop — between iterations,
// between candidate validations, inside per-prefix simulation passes — so
// cancellation and deadlines take effect promptly. The returned Result is
// always usable: on "deadline" or "canceled" it carries the best-effort
// repair found so far.
func RepairContext(ctx context.Context, p Problem, opts Options) *Result {
	opts = opts.withDefaults()
	start := time.Now()
	if opts.MaxWallClock > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.MaxWallClock)
		defer cancel()
	}
	if !opts.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, opts.Deadline)
		defer cancel()
	}
	// Thread the run context into every base (re)simulation the engine
	// performs while preserving candidates.
	opts.SimOpts.Ctx = ctx

	res := &Result{FinalConfigs: p.Configs, Termination: "iteration-cap"}
	sink := newJournalSink(opts.Journal, res, opts.CheckpointEvery)
	ec := newEvalCache(opts)
	res.ParallelWorkers = opts.Parallelism
	if opts.Chaos != nil || opts.SimOpts.PrefixHook != nil {
		// Stateful injection seams count invocations; concurrency would
		// make the injection sequence scheduler-dependent.
		res.ParallelWorkers = 1
	}

	best := &bestEffort{fitness: -1}
	finish := func(term string) *Result {
		res.Termination = term
		best.writeTo(res)
		sink.terminal(term, res.Feasible)
		// Fold the cache's store-corruption tally in on every exit path.
		// Not checkpointed and not part of Canonical(): a resumed run only
		// reports the corruption it observed itself.
		res.StoreCorrupt = ec.storeCorrupt
		res.WallClock = time.Since(start)
		return res
	}
	interrupted := func() (string, bool) {
		switch ctx.Err() {
		case context.DeadlineExceeded:
			return "deadline", true
		case context.Canceled:
			return "canceled", true
		}
		return "", false
	}
	abort := func() *Result {
		term, _ := interrupted()
		kind := KindDeadline
		if term == "canceled" {
			kind = KindCanceled
		}
		res.recordError(&RepairError{Kind: kind, Op: "run", Err: ctx.Err()})
		return finish(term)
	}

	// st carries the loop-control state across iterations so it can be
	// checkpointed as a unit. st.widen multiplies the suspicious-line
	// scope. It grows when an iteration preserves nothing (every candidate
	// made things worse) and when fitness stagnates across iterations —
	// interacting faults can poison the constraints of the top-ranked
	// lines' templates while the real fix sits just below a tie boundary
	// or outside a tight TopK.
	var st loopState
	if restored, ok := tryResume(res, best, p, opts); ok {
		st = restored
		res.Resumed = true
		res.ResumedFrom = st.iter
		// Rebuild the evaluation cache the straight-through run held at
		// this checkpoint from the journaled candidate digests, so the
		// resumed run's hits and misses replay identically.
		ec.warm(opts.Resume.Candidates, st.iter)
	} else {
		base := preserve(res, p, p.Configs, nil, opts)
		if base == nil {
			// The base version itself could not be verified (persistent
			// panic or immediate cancellation): nothing to search from.
			if _, ok := interrupted(); ok {
				return abort()
			}
			return finish("exhausted")
		}
		if _, ok := interrupted(); ok {
			// The base verification may be partial (canceled outcomes):
			// its fitness is not trustworthy, so report nothing beyond
			// the abort.
			return abort()
		}
		res.BaseFailing = base.fitness
		res.StaticDiagnostics = len(base.ctx.Diags)
		res.PriorSeededLines = base.ctx.PriorSeeded
		best.observe(base.fitness, p.Configs, nil)
		if base.fitness == 0 {
			res.Feasible = true
			return finish("feasible")
		}
		st = loopState{pop: []*candidate{base}, prevFitness: base.fitness,
			widen: 1, bestEver: base.fitness}
		// The base snapshot is the minimum viable restart point: a crash
		// before the first iteration checkpoint resumes here instead of
		// re-paying base verification and localization.
		sink.checkpoint(res, best, st)
	}
	pop, prevFitness := st.pop, st.prevFitness
	widen, bestEver, stagnant := st.widen, st.bestEver, st.stagnant

	for iter := st.iter + 1; iter <= opts.MaxIterations; iter++ {
		// Every random stream this iteration draws from is derived from
		// (Seed, iter), so a run resumed at this boundary replays the
		// exact straight-through search.
		rng := iterRNG(opts.Seed, iter)
		endIteration := func() {
			sink.checkpoint(res, best, loopState{iter: iter, pop: pop,
				prevFitness: prevFitness, widen: widen, bestEver: bestEver, stagnant: stagnant})
		}
		if _, ok := interrupted(); ok {
			return abort()
		}
		res.Iterations = iter
		log := IterationLog{Iteration: iter, BestFitness: prevFitness}

		// --- Fix: generate candidates from every preserved update --------
		var props []proposal
		seen := map[string]bool{}
		for _, member := range pop {
			mProps := generate(res, member, opts, widen, rng)
			log.Generated += len(mProps)
			for _, pr := range mProps {
				key := signature(member, pr.update)
				if !seen[key] {
					seen[key] = true
					props = append(props, pr)
				}
			}
		}
		if len(pop) > 0 {
			log.TopSuspicious = append(log.TopSuspicious,
				sbfl.Suspicious(pop[0].ctx.Ranks, 5, opts.MinSusp)...)
		}
		if len(props) == 0 {
			if widen < 8 {
				widen *= 2
				res.Logs = append(res.Logs, log)
				sink.iteration(log)
				endIteration()
				continue
			}
			res.Logs = append(res.Logs, log)
			sink.iteration(log)
			return finish("exhausted")
		}
		limit := opts.CandidateCap * widen
		if len(props) > limit {
			if opts.Strategy == Evolutionary {
				rng.Shuffle(len(props), func(i, j int) { props[i], props[j] = props[j], props[i] })
			}
			props = props[:limit]
		}

		// --- Validate -----------------------------------------------------
		// Proposals are validated by the batch validator's worker pool
		// (internal/core/parallel.go); this loop is the single-threaded
		// merge: it consumes outcomes strictly in proposal order, and it
		// alone touches res, the log, the sink, the cache, and best — so
		// the Result is identical at any Options.Parallelism.
		bv := newBatchValidator(ctx, props, opts, ec)
		var kept []proposal
		feasibleAt := -1
		for i := range props {
			if _, ok := interrupted(); ok {
				bv.close()
				res.Logs = append(res.Logs, log)
				return abort()
			}
			pr := &props[i]
			out := bv.resolve(i)
			out.stats.mergeInto(res)
			if !out.ok {
				if _, ok := interrupted(); ok {
					bv.close()
					res.Logs = append(res.Logs, log)
					return abort()
				}
				var dv *verify.DivergenceError
				if errors.As(out.err, &dv) {
					// The impact analysis was caught pruning unsoundly.
					// Continuing would search on corrupted fitness data;
					// fail the run and surface the minimized repro.
					bv.close()
					res.recordError(&RepairError{Kind: KindImpactDivergence, Op: "validate", Candidate: pr.update.Desc, Err: dv})
					res.Logs = append(res.Logs, log)
					sink.iteration(log)
					return finish("impact-divergence")
				}
				var dde *verify.DeltaDivergenceError
				if errors.As(out.err, &dde) {
					// The delta simulator reached a fixpoint a cold
					// simulation would not; same terminal treatment.
					bv.close()
					res.recordError(&RepairError{Kind: KindDeltaDivergence, Op: "validate", Candidate: pr.update.Desc, Err: dde})
					res.Logs = append(res.Logs, log)
					sink.iteration(log)
					return finish("delta-divergence")
				}
				continue // malformed or quarantined candidate
			}
			res.CandidatesValidated++
			log.Validated++
			pr.fitness = out.fitness
			if out.hit {
				res.CacheHits++
			} else if out.digest != "" {
				// A store answer is accounted as an in-memory miss, exactly
				// like the simulation it replaced: the fitness enters the
				// cache so later duplicates hit it, and CacheHits/CacheMisses
				// — part of Canonical() — match a cold-store run byte for
				// byte. Only the cost counters below see the store.
				res.CacheMisses++
				ec.put(out.digest, pr.fitness)
				if out.mode == modeStore {
					res.StoreHits++
				} else if ec.store != nil {
					res.StoreMisses++
					ec.storePut(out.digest, pr.fitness)
				}
			}
			sink.candidate(iter, pr.update.Desc, pr.fitness, out.digest, out.stats.refuted > 0)
			if pr.fitness < log.BestFitness {
				log.BestFitness = pr.fitness
			}
			if best.fitness < 0 || pr.fitness < best.fitness {
				best.observeLazy(pr.fitness, pr)
			}
			if pr.fitness == 0 {
				// Feasible update found (termination condition 1). Later
				// proposals are discarded unmerged, exactly as the serial
				// engine never validated them.
				feasibleAt = i
				break
			}
			// Discard candidates whose fitness exceeds the previous
			// iteration's (the paper's preservation rule).
			if pr.fitness <= prevFitness {
				kept = append(kept, *pr)
			}
		}
		bv.close()
		if feasibleAt >= 0 {
			pr := &props[feasibleAt]
			final := applyUpdate(pr.parent.configs, pr.update)
			res.Feasible = true
			res.FinalConfigs = final
			res.Applied = append(append([]string{}, pr.parent.descs...), pr.update.Desc)
			for d, c := range final {
				// Compare by text, not pointer: a resumed run's configs
				// are rebuilt from the checkpoint and never share
				// pointers with p.Configs.
				if c.Text() != p.Configs[d].Text() {
					res.Diffs = append(res.Diffs, netcfg.Diff(p.Configs[d], c))
				}
			}
			sort.Strings(res.Diffs)
			res.Logs = append(res.Logs, log)
			sink.iteration(log)
			return finish("feasible")
		}
		log.Kept = len(kept)
		res.Logs = append(res.Logs, log)
		sink.iteration(log)
		if len(kept) == 0 {
			if widen < 8 {
				// Nothing preserved at this scope: widen and retry from
				// the same population.
				widen *= 2
				endIteration()
				continue
			}
			return finish("exhausted")
		}
		if log.BestFitness < bestEver {
			bestEver = log.BestFitness
			widen = 1
			stagnant = 0
		} else {
			stagnant++
			if stagnant >= 2 && widen < 8 {
				// Candidates are preserved but fitness has stopped
				// improving: the fix is probably outside the current
				// suspicious scope.
				widen *= 2
				stagnant = 0
			}
		}
		// --- Select the next population ------------------------------------
		sort.SliceStable(kept, func(i, j int) bool {
			if kept[i].fitness != kept[j].fitness {
				return kept[i].fitness < kept[j].fitness
			}
			return len(kept[i].parent.descs) < len(kept[j].parent.descs)
		})
		if len(kept) > opts.PopulationCap {
			kept = kept[:opts.PopulationCap]
		}
		next := make([]*candidate, 0, len(kept))
		maxFit := 0
		for _, pr := range kept {
			if _, ok := interrupted(); ok {
				return abort()
			}
			c := preserve(res, p, applyUpdate(pr.parent.configs, pr.update),
				append(append([]string{}, pr.parent.descs...), pr.update.Desc), opts)
			if c == nil {
				continue // preservation quarantined (panic during re-verify)
			}
			next = append(next, c)
			if c.fitness > maxFit {
				maxFit = c.fitness
			}
		}
		if len(next) == 0 {
			if _, ok := interrupted(); ok {
				return abort()
			}
			if widen < 8 {
				widen *= 2
				endIteration()
				continue
			}
			return finish("exhausted")
		}
		pop = next
		// "The fitness of an iteration is defined as the largest fitness
		// among the preserved updates."
		prevFitness = maxFit
		endIteration()
	}
	return finish(res.Termination)
}

// iterRNG derives iteration iter's random stream. Streams are addressed
// by (seed, purpose) instead of advancing one global generator so a
// checkpointed run restarts mid-search without serializing RNG state: the
// stream for any iteration — or any preserved configuration version (see
// versionRNG) — is recomputable from the journal alone.
func iterRNG(seed int64, iter int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, fmt.Sprintf("iter/%d", iter))))
}

// versionRNG derives the stream for one configuration version, addressed
// by the template applications that produced it. Rebuilding the version
// from a checkpoint therefore reconstructs the identical context.
func versionRNG(seed int64, descs []string) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, "version/"+strings.Join(descs, "|"))))
}

// retryRNG derives the backoff-jitter stream for one candidate, addressed
// by its update description. Keying the stream to the candidate's content
// (not to which worker validates it, or in what order) keeps `-p 1` ≡
// `-p N` determinism and resume byte-identity intact: jitter only ever
// shifts wall clock, and even the draws themselves are reproducible.
func retryRNG(seed int64, desc string) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, "retry/"+desc)))
}

// jitterBackoff draws a full-jitter sleep: uniform over [0, backoff].
// Full jitter (rather than equal jitter or none) decorrelates the retry
// storms a shared fault — one overloaded solver box behind the validator —
// would otherwise synchronize across candidates and nodes.
func jitterBackoff(rng *rand.Rand, backoff time.Duration) time.Duration {
	if backoff <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(backoff) + 1))
}

// deriveSeed mixes the run seed with a stream label.
func deriveSeed(seed int64, stream string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(stream))
	return int64(h.Sum64())
}

// tryResume restores the run from opts.Resume. It refuses — recording a
// KindJournal error and reporting ok=false, which falls back to a fresh
// run — when the session's digests do not match this problem and these
// options, when the session already completed its search, or when no
// checkpointed population member survives re-verification.
func tryResume(res *Result, best *bestEffort, p Problem, opts Options) (loopState, bool) {
	sess := opts.Resume
	if sess == nil || sess.Header == nil {
		return loopState{}, false
	}
	refuse := func(err error) (loopState, bool) {
		res.recordError(&RepairError{Kind: KindJournal, Op: "resume", Err: err})
		return loopState{}, false
	}
	if got := p.Digest(); sess.Header.CaseDigest != got {
		return refuse(fmt.Errorf("journaled case digest %.12s does not match this case (%.12s)", sess.Header.CaseDigest, got))
	}
	if got := opts.SearchDigest(); sess.Header.OptionsDigest != got {
		return refuse(fmt.Errorf("journaled options digest %.12s does not match these options (%.12s)", sess.Header.OptionsDigest, got))
	}
	if !sess.Resumable() {
		return refuse(fmt.Errorf("session already completed (%s)", sess.Terminal.Termination))
	}
	if sess.Checkpoint == nil {
		// The run died before its first checkpoint: nothing to restore,
		// but nothing lost either — a fresh run under the same seed IS
		// the continuation.
		return loopState{}, false
	}
	st, ok := restoreCheckpoint(res, best, p, opts, sess.Checkpoint)
	if !ok {
		return refuse(fmt.Errorf("no checkpointed population member survived re-verification"))
	}
	return st, true
}

// bestEffort tracks the best configuration version observed so far, so an
// interrupted or infeasible run still returns partial progress. Improving
// candidates are recorded unmaterialized — the parent's configs plus the
// winning update — and the full configuration map is only built when
// something actually reads it (the final result, a checkpoint). A long
// run that improves on hundreds of candidates but keeps only the last
// therefore clones configurations O(checkpoints) times, not O(improvements).
type bestEffort struct {
	fitness int // -1 until first observation
	// configs/applied are the materialized form: either observed directly
	// (base version, checkpoint restore) or built by materialize.
	configs map[string]*netcfg.Config
	applied []string
	// parent/update are the pending lazy observation; parent is nil when
	// configs is current.
	parent      map[string]*netcfg.Config
	parentDescs []string
	update      Update
}

// observe records a fully materialized version (the base, or a restored
// checkpoint's best).
func (b *bestEffort) observe(fitness int, configs map[string]*netcfg.Config, applied []string) {
	if b.fitness >= 0 && fitness >= b.fitness {
		return
	}
	b.fitness = fitness
	b.configs = configs
	b.applied = applied
	b.parent = nil
}

// observeLazy records an improving candidate without materializing it.
// The caller has already established the improvement (the merge loop's
// fitness check), so this unconditionally replaces the previous best.
func (b *bestEffort) observeLazy(fitness int, pr *proposal) {
	b.fitness = fitness
	b.configs = nil
	b.applied = nil
	b.parent = pr.parent.configs
	b.parentDescs = pr.parent.descs
	b.update = pr.update
}

// materialize builds (and memoizes) the best version's configuration map.
func (b *bestEffort) materialize() {
	if b.parent == nil {
		return
	}
	b.configs = applyUpdate(b.parent, b.update)
	b.applied = append(append([]string{}, b.parentDescs...), b.update.Desc)
	b.parent = nil
}

func (b *bestEffort) writeTo(res *Result) {
	if b.fitness < 0 {
		// Nothing was ever verified: fall back to the base.
		res.BestEffortConfigs = res.FinalConfigs
		res.BestEffortFitness = res.BaseFailing
		return
	}
	b.materialize()
	res.BestEffortConfigs = b.configs
	res.BestEffortFitness = b.fitness
	res.BestEffortApplied = b.applied
	res.Improved = b.fitness < res.BaseFailing
	if res.Feasible {
		res.BestEffortConfigs = res.FinalConfigs
		res.BestEffortFitness = 0
		res.BestEffortApplied = res.Applied
		res.Improved = res.BaseFailing > 0
	}
}

// validateCandidate runs one candidate's validation behind the full
// resilience boundary: chaos injection, transient-fault retries with
// exponential backoff, panic quarantine, and the per-candidate timeout.
// Counters and errors go to st — the caller's private valStats slot —
// never to the shared Result, so validations may run concurrently; iv is
// the verifier to validate against (the parent's own on the merge
// goroutine, a per-worker clone in the pool).
func validateCandidate(ctx context.Context, st *valStats, iv *verify.Incremental, pr *proposal, opts Options) (*verify.Report, error) {
	backoff := opts.RetryBackoff
	var jitter *rand.Rand
	var lastErr error
	for attempt := 0; attempt <= opts.MaxValidationRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		retry := func(err error) {
			lastErr = err
			st.retries++
			st.recordError(&RepairError{Kind: KindTransient, Op: "validate", Candidate: pr.update.Desc, Err: err})
			if attempt < opts.MaxValidationRetries {
				// Back off only when another attempt follows; sleeping
				// after the final failure would waste RetryBackoff*2^k of
				// wall clock on a candidate already being given up on.
				// The sleep is full-jitter over the doubling window, drawn
				// from the candidate's content-derived stream (retryRNG) so
				// the schedule is reproducible under any parallelism.
				if jitter == nil {
					jitter = retryRNG(opts.Seed, pr.update.Desc)
				}
				sleepCtx(ctx, jitterBackoff(jitter, backoff))
				backoff *= 2
			}
		}
		if opts.Chaos != nil {
			if err := opts.Chaos.BeforeValidate(); err != nil {
				if IsTransient(err) {
					retry(err)
					continue
				}
				return nil, err
			}
		}
		rep, err := checkOnce(ctx, st, iv, pr, opts)
		if err != nil && IsTransient(err) {
			retry(err)
			continue
		}
		return rep, err
	}
	return nil, lastErr
}

// checkOnce performs one validator invocation with panic quarantine and
// the per-candidate timeout.
func checkOnce(ctx context.Context, st *valStats, iv *verify.Incremental, pr *proposal, opts Options) (rep *verify.Report, err error) {
	cctx := ctx
	if opts.CandidateTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, opts.CandidateTimeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			st.panicked++
			st.recordError(&RepairError{
				Kind:      KindCandidatePanic,
				Op:        "validate",
				Candidate: pr.update.Desc,
				Err:       fmt.Errorf("panic: %v", rec),
				Stack:     debug.Stack(),
			})
			rep, err = nil, errQuarantined
		}
	}()
	if opts.FullValidation {
		rep, err = iv.FullCheckCtx(cctx, pr.update.Edits)
		if rep != nil {
			st.intentChecks += len(rep.Verdicts)
			st.prefixSims += len(iv.BaseNet().AllPrefixes())
		}
	} else {
		var stats verify.Stats
		rep, stats, err = iv.CheckCtx(cctx, pr.update.Edits)
		st.prefixSims += stats.PrefixesSimulated
		st.intentChecks += stats.IntentsReverified
		st.derived += stats.PrefixesDerived
		st.deltaReused += stats.PrefixesDelta
		st.deltaResim += stats.DeltaFallbacks
		st.activations += stats.Activations
		if err == nil && !opts.NoImpact {
			switch {
			case stats.Refuted:
				st.refuted++
			case stats.Broad:
				st.broad++
			default:
				st.scoped++
			}
		}
	}
	if err != nil && cctx.Err() != nil && ctx.Err() == nil {
		// The candidate's own timeout tripped, not the run's: quarantine
		// just this candidate.
		st.timedOut++
		st.recordError(&RepairError{Kind: KindCandidateTimeout, Op: "validate", Candidate: pr.update.Desc, Err: err})
		err = errQuarantined
	}
	return rep, err
}

// sleepCtx sleeps for d or until the context is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// generate produces this member's proposals: template applications at
// suspicious lines, sampled under the evolutionary strategy, plus simple
// crossovers merging disjoint-device proposals. Each template application
// is panic-isolated: a panicking template poisons only its own proposals.
func generate(res *Result, member *candidate, opts Options, widen int, rng *rand.Rand) []proposal {
	sus := sbfl.Suspicious(member.ctx.Ranks, opts.TopKLines*widen, opts.MinSusp)
	var props []proposal
	for _, sc := range sus {
		tmpls := opts.Templates
		// Static pruning: at a line the analyzers diagnosed, try only the
		// templates repairing the diagnosed error classes. Widening (an
		// escalation signal: the current scope failed to produce a repair)
		// restores the full template set, so the prior can only misdirect
		// the first pass, never the search.
		if widen == 1 {
			if classes := member.ctx.DiagClasses[sc.Line]; len(classes) > 0 {
				var keep []Template
				for _, tmpl := range tmpls {
					if classes[tmpl.ErrorClass()] {
						keep = append(keep, tmpl)
					}
				}
				if len(keep) > 0 && len(keep) < len(tmpls) {
					res.TemplatesPrunedStatic += len(tmpls) - len(keep)
					tmpls = keep
				}
			}
		}
		for _, tmpl := range tmpls {
			for _, up := range safeGenerate(res, tmpl, member.ctx, sc.Line) {
				props = append(props, proposal{parent: member, update: up})
			}
		}
	}
	if opts.Strategy == Evolutionary {
		rng.Shuffle(len(props), func(i, j int) { props[i], props[j] = props[j], props[i] })
		if max := opts.SampleSize * widen; len(props) > max {
			props = props[:max]
		}
		// Crossover: merge pairs touching disjoint devices.
		n := len(props)
		for c := 0; c < 4 && n >= 2; c++ {
			a, b := props[rng.Intn(n)], props[rng.Intn(n)]
			if merged, ok := mergeUpdates(a.update, b.update); ok {
				props = append(props, proposal{parent: member, update: merged})
			}
		}
	}
	return props
}

// safeGenerate quarantines panics of one template application.
func safeGenerate(res *Result, tmpl Template, ctx *Context, line netcfg.LineRef) (ups []Update) {
	defer func() {
		if rec := recover(); rec != nil {
			res.CandidatesPanicked++
			res.recordError(&RepairError{
				Kind:      KindCandidatePanic,
				Op:        "generate",
				Candidate: fmt.Sprintf("%s@%s", tmpl.Name(), line),
				Err:       fmt.Errorf("panic: %v", rec),
				Stack:     debug.Stack(),
			})
			ups = nil
		}
	}()
	return tmpl.Generate(ctx, line)
}

// mergeUpdates combines two updates when they touch disjoint devices.
func mergeUpdates(a, b Update) (Update, bool) {
	devs := map[string]bool{}
	for _, es := range a.Edits {
		devs[es.Device] = true
	}
	for _, es := range b.Edits {
		if devs[es.Device] {
			return Update{}, false
		}
	}
	if a.Desc == b.Desc {
		return Update{}, false
	}
	return Update{
		Edits: append(append([]netcfg.EditSet{}, a.Edits...), b.Edits...),
		Desc:  a.Desc + " + " + b.Desc,
	}, true
}

// preserve fully verifies one configuration version and builds its
// localization context, with panic quarantine: a version whose
// re-verification panics (a simulator bug, or an injected chaos fault) is
// dropped from the population instead of killing the run. The base version
// additionally gets retries, since without it there is no search at all.
func preserve(res *Result, p Problem, configs map[string]*netcfg.Config, descs []string, opts Options) *candidate {
	attempts := 1
	if descs == nil { // the base version
		attempts = 1 + opts.MaxValidationRetries
	}
	for a := 0; a < attempts; a++ {
		c := func() (c *candidate) {
			defer func() {
				if rec := recover(); rec != nil {
					res.CandidatesPanicked++
					res.recordError(&RepairError{
						Kind:      KindCandidatePanic,
						Op:        "preserve",
						Candidate: strings.Join(descs, " + "),
						Err:       fmt.Errorf("panic: %v", rec),
						Stack:     debug.Stack(),
					})
					c = nil
				}
			}()
			return newCandidate(p, configs, descs, opts)
		}()
		if c != nil {
			return c
		}
		if opts.SimOpts.Ctx != nil && opts.SimOpts.Ctx.Err() != nil {
			return nil
		}
	}
	return nil
}

// newCandidate fully verifies one configuration version and builds its
// localization context. The context's random stream is addressed by the
// version's descs (versionRNG) so a version restored from a checkpoint is
// indistinguishable from one preserved straight through.
func newCandidate(p Problem, configs map[string]*netcfg.Config, descs []string, opts Options) *candidate {
	iv := verify.NewIncremental(p.Topo, configs, p.Intents, opts.SimOpts)
	iv.NoImpact = opts.NoImpact
	iv.Differential = opts.ImpactDifferential
	iv.NoDelta = opts.NoDelta
	iv.DeltaDifferential = opts.DeltaDifferential
	c := &candidate{
		configs: configs,
		iv:      iv,
		fitness: iv.BaseReport().NumFailed(),
		descs:   descs,
	}
	c.ctx = buildContext(p, iv, opts.Formula, versionRNG(opts.Seed, descs), !opts.NoStaticPrior)
	return c
}

// applyUpdate materializes an update against a configuration map.
func applyUpdate(configs map[string]*netcfg.Config, up Update) map[string]*netcfg.Config {
	out := make(map[string]*netcfg.Config, len(configs))
	for d, c := range configs { //acrvet:ordered
		out[d] = c
	}
	for _, es := range up.Edits {
		if base, ok := out[es.Device]; ok {
			if next, err := es.Apply(base); err == nil {
				out[es.Device] = next
			}
		}
	}
	return out
}

// signature canonically identifies a proposal for dedup.
func signature(parent *candidate, up Update) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%p|", parent)
	sets := append([]netcfg.EditSet{}, up.Edits...)
	sort.Slice(sets, func(i, j int) bool { return sets[i].Device < sets[j].Device })
	for _, es := range sets {
		sb.WriteString(es.String())
		sb.WriteByte(';')
	}
	return sb.String()
}
