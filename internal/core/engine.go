package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"acr/internal/bgp"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/verify"
)

// Strategy selects how candidates are generated from the suspicious set
// (§4.2 "Generation strategy").
type Strategy uint8

// Generation strategies.
const (
	// Evolutionary samples template applications randomly per preserved
	// update and merges disjoint candidates (single-point crossover in
	// edit space) — the paper's search-based strategy.
	Evolutionary Strategy = iota
	// BruteForce applies every template to every suspicious statement —
	// the Cartesian-product strategy.
	BruteForce
)

// Options tunes the engine. Zero values select the paper's defaults.
type Options struct {
	Formula       sbfl.Formula // default Tarantula
	MaxIterations int          // default 500 (the paper's cap)
	MinSusp       float64      // suspiciousness threshold, default 0.45
	TopKLines     int          // suspicious lines considered per version, default 24
	PopulationCap int          // preserved updates carried per iteration, default 8
	CandidateCap  int          // validated candidates per iteration, default 64
	SampleSize    int          // evolutionary: proposals sampled per member, default 16
	Strategy      Strategy
	Seed          int64
	Templates     []Template
	SimOpts       bgp.Options
	// FullValidation disables the incremental verifier (ablation).
	FullValidation bool
}

func (o Options) withDefaults() Options {
	if o.Formula.Fn == nil {
		o.Formula = sbfl.Tarantula
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 500
	}
	if o.MinSusp == 0 {
		o.MinSusp = 0.45
	}
	if o.TopKLines <= 0 {
		o.TopKLines = 24
	}
	if o.PopulationCap <= 0 {
		o.PopulationCap = 8
	}
	if o.CandidateCap <= 0 {
		o.CandidateCap = 64
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 16
	}
	if o.Templates == nil {
		o.Templates = DefaultTemplates()
	}
	return o
}

// IterationLog records one localize-fix-validate round.
type IterationLog struct {
	Iteration int
	// Generated counts candidate updates produced by templates — the size
	// of this iteration's search space (the leaf nodes of the search
	// forest, Figure 3c).
	Generated int
	// Validated counts candidates actually checked (after dedup and caps).
	Validated int
	// Kept counts candidates preserved for the next iteration.
	Kept int
	// BestFitness is the lowest failing-test count seen this iteration.
	BestFitness int
	// TopSuspicious snapshots the head of the ranking (for reports).
	TopSuspicious []sbfl.Score
}

// Result is the outcome of a repair run.
type Result struct {
	Feasible bool
	// FinalConfigs are the repaired configurations (the base ones when
	// infeasible).
	FinalConfigs map[string]*netcfg.Config
	// Applied describes the template applications of the feasible update,
	// in order.
	Applied []string
	// Diffs renders per-device diffs of the feasible update.
	Diffs []string
	// Iterations actually executed.
	Iterations int
	// BaseFailing is the failing-test count before repair.
	BaseFailing int
	// Termination explains why the run ended: "feasible", "exhausted"
	// (S = ∅), or "iteration-cap".
	Termination string
	Logs        []IterationLog
	// CandidatesValidated counts all validator invocations.
	CandidatesValidated int
	// PrefixSimulations counts per-prefix control-plane runs performed by
	// validation (the incremental verifier's saving shows up here).
	PrefixSimulations int
	// IntentChecks counts intent re-verifications.
	IntentChecks int
}

// Summary renders the result for CLI reports.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "feasible=%v termination=%s iterations=%d baseFailing=%d validated=%d\n",
		r.Feasible, r.Termination, r.Iterations, r.BaseFailing, r.CandidatesValidated)
	for _, a := range r.Applied {
		fmt.Fprintf(&sb, "  applied: %s\n", a)
	}
	return sb.String()
}

// candidate is one preserved update: materialized configurations plus the
// verification/localization state built on them.
type candidate struct {
	configs map[string]*netcfg.Config
	iv      *verify.Incremental
	ctx     *Context
	fitness int
	descs   []string
}

// proposal is a not-yet-preserved candidate update.
type proposal struct {
	parent  *candidate
	update  Update
	fitness int
}

// Repair runs localize–fix–validate (Figure 4) until a feasible update is
// found, candidates are exhausted, or the iteration cap is hit.
func Repair(p Problem, opts Options) *Result {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{FinalConfigs: p.Configs, Termination: "iteration-cap"}

	base := newCandidate(p, p.Configs, nil, opts, rng)
	res.BaseFailing = base.fitness
	if base.fitness == 0 {
		res.Feasible = true
		res.Termination = "feasible"
		return res
	}
	pop := []*candidate{base}
	prevFitness := base.fitness
	// widen multiplies the suspicious-line scope. It grows when an
	// iteration preserves nothing (every candidate made things worse) and
	// when fitness stagnates across iterations — interacting faults can
	// poison the constraints of the top-ranked lines' templates while the
	// real fix sits just below a tie boundary or outside a tight TopK.
	widen := 1
	bestEver := base.fitness
	stagnant := 0

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		res.Iterations = iter
		log := IterationLog{Iteration: iter, BestFitness: prevFitness}

		// --- Fix: generate candidates from every preserved update --------
		var props []proposal
		seen := map[string]bool{}
		for _, member := range pop {
			mProps := generate(member, opts, widen, rng)
			log.Generated += len(mProps)
			for _, pr := range mProps {
				key := signature(member, pr.update)
				if !seen[key] {
					seen[key] = true
					props = append(props, pr)
				}
			}
		}
		if len(pop) > 0 {
			log.TopSuspicious = append(log.TopSuspicious,
				sbfl.Suspicious(pop[0].ctx.Ranks, 5, opts.MinSusp)...)
		}
		if len(props) == 0 {
			if widen < 8 {
				widen *= 2
				res.Logs = append(res.Logs, log)
				continue
			}
			res.Termination = "exhausted"
			res.Logs = append(res.Logs, log)
			return res
		}
		limit := opts.CandidateCap * widen
		if len(props) > limit {
			if opts.Strategy == Evolutionary {
				rng.Shuffle(len(props), func(i, j int) { props[i], props[j] = props[j], props[i] })
			}
			props = props[:limit]
		}

		// --- Validate -----------------------------------------------------
		var kept []proposal
		for i := range props {
			pr := &props[i]
			var rep *verify.Report
			var err error
			if opts.FullValidation {
				rep, err = pr.parent.iv.FullCheck(pr.update.Edits)
				if rep != nil {
					res.IntentChecks += len(rep.Verdicts)
					res.PrefixSimulations += len(pr.parent.iv.BaseNet().AllPrefixes())
				}
			} else {
				var stats verify.Stats
				rep, stats, err = pr.parent.iv.Check(pr.update.Edits)
				res.PrefixSimulations += stats.PrefixesSimulated
				res.IntentChecks += stats.IntentsReverified
			}
			if err != nil {
				continue // malformed candidate (e.g. conflicting edits)
			}
			res.CandidatesValidated++
			log.Validated++
			pr.fitness = rep.NumFailed()
			if pr.fitness < log.BestFitness {
				log.BestFitness = pr.fitness
			}
			if pr.fitness == 0 {
				// Feasible update found (termination condition 1).
				final := applyUpdate(pr.parent.configs, pr.update)
				res.Feasible = true
				res.Termination = "feasible"
				res.FinalConfigs = final
				res.Applied = append(append([]string{}, pr.parent.descs...), pr.update.Desc)
				for d, c := range final {
					if c != p.Configs[d] {
						res.Diffs = append(res.Diffs, netcfg.Diff(p.Configs[d], c))
					}
				}
				sort.Strings(res.Diffs)
				res.Logs = append(res.Logs, log)
				return res
			}
			// Discard candidates whose fitness exceeds the previous
			// iteration's (the paper's preservation rule).
			if pr.fitness <= prevFitness {
				kept = append(kept, *pr)
			}
		}
		log.Kept = len(kept)
		res.Logs = append(res.Logs, log)
		if len(kept) == 0 {
			if widen < 8 {
				// Nothing preserved at this scope: widen and retry from
				// the same population.
				widen *= 2
				continue
			}
			res.Termination = "exhausted"
			return res
		}
		if log.BestFitness < bestEver {
			bestEver = log.BestFitness
			widen = 1
			stagnant = 0
		} else {
			stagnant++
			if stagnant >= 2 && widen < 8 {
				// Candidates are preserved but fitness has stopped
				// improving: the fix is probably outside the current
				// suspicious scope.
				widen *= 2
				stagnant = 0
			}
		}
		// --- Select the next population ------------------------------------
		sort.SliceStable(kept, func(i, j int) bool {
			if kept[i].fitness != kept[j].fitness {
				return kept[i].fitness < kept[j].fitness
			}
			return len(kept[i].parent.descs) < len(kept[j].parent.descs)
		})
		if len(kept) > opts.PopulationCap {
			kept = kept[:opts.PopulationCap]
		}
		next := make([]*candidate, 0, len(kept))
		maxFit := 0
		for _, pr := range kept {
			c := newCandidate(p, applyUpdate(pr.parent.configs, pr.update),
				append(append([]string{}, pr.parent.descs...), pr.update.Desc), opts, rng)
			next = append(next, c)
			if c.fitness > maxFit {
				maxFit = c.fitness
			}
		}
		pop = next
		// "The fitness of an iteration is defined as the largest fitness
		// among the preserved updates."
		prevFitness = maxFit
	}
	return res
}

// generate produces this member's proposals: template applications at
// suspicious lines, sampled under the evolutionary strategy, plus simple
// crossovers merging disjoint-device proposals.
func generate(member *candidate, opts Options, widen int, rng *rand.Rand) []proposal {
	sus := sbfl.Suspicious(member.ctx.Ranks, opts.TopKLines*widen, opts.MinSusp)
	var props []proposal
	for _, sc := range sus {
		for _, tmpl := range opts.Templates {
			for _, up := range tmpl.Generate(member.ctx, sc.Line) {
				props = append(props, proposal{parent: member, update: up})
			}
		}
	}
	if opts.Strategy == Evolutionary {
		rng.Shuffle(len(props), func(i, j int) { props[i], props[j] = props[j], props[i] })
		if max := opts.SampleSize * widen; len(props) > max {
			props = props[:max]
		}
		// Crossover: merge pairs touching disjoint devices.
		n := len(props)
		for c := 0; c < 4 && n >= 2; c++ {
			a, b := props[rng.Intn(n)], props[rng.Intn(n)]
			if merged, ok := mergeUpdates(a.update, b.update); ok {
				props = append(props, proposal{parent: member, update: merged})
			}
		}
	}
	return props
}

// mergeUpdates combines two updates when they touch disjoint devices.
func mergeUpdates(a, b Update) (Update, bool) {
	devs := map[string]bool{}
	for _, es := range a.Edits {
		devs[es.Device] = true
	}
	for _, es := range b.Edits {
		if devs[es.Device] {
			return Update{}, false
		}
	}
	if a.Desc == b.Desc {
		return Update{}, false
	}
	return Update{
		Edits: append(append([]netcfg.EditSet{}, a.Edits...), b.Edits...),
		Desc:  a.Desc + " + " + b.Desc,
	}, true
}

// newCandidate fully verifies one configuration version and builds its
// localization context.
func newCandidate(p Problem, configs map[string]*netcfg.Config, descs []string, opts Options, rng *rand.Rand) *candidate {
	iv := verify.NewIncremental(p.Topo, configs, p.Intents, opts.SimOpts)
	c := &candidate{
		configs: configs,
		iv:      iv,
		fitness: iv.BaseReport().NumFailed(),
		descs:   descs,
	}
	c.ctx = buildContext(p, iv, opts.Formula, rng)
	return c
}

// applyUpdate materializes an update against a configuration map.
func applyUpdate(configs map[string]*netcfg.Config, up Update) map[string]*netcfg.Config {
	out := make(map[string]*netcfg.Config, len(configs))
	for d, c := range configs {
		out[d] = c
	}
	for _, es := range up.Edits {
		if base, ok := out[es.Device]; ok {
			if next, err := es.Apply(base); err == nil {
				out[es.Device] = next
			}
		}
	}
	return out
}

// signature canonically identifies a proposal for dedup.
func signature(parent *candidate, up Update) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%p|", parent)
	sets := append([]netcfg.EditSet{}, up.Edits...)
	sort.Slice(sets, func(i, j int) bool { return sets[i].Device < sets[j].Device })
	for _, es := range sets {
		sb.WriteString(es.String())
		sb.WriteByte(';')
	}
	return sb.String()
}
