package core

import (
	"math/rand"
	"net/netip"

	"acr/internal/bgp"
	"acr/internal/coverage"
	"acr/internal/netcfg"
	"acr/internal/provenance"
	"acr/internal/sbfl"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Problem is a repair task: a network whose configurations violate some
// intents.
type Problem struct {
	Topo    *topo.Network
	Configs map[string]*netcfg.Config
	Intents []verify.Intent
}

// Context is everything a change template may consult when generating
// candidates for one configuration version: the compiled and simulated
// network, its provenance, the verification report, and the coverage
// spectrum. Contexts are built once per preserved candidate.
type Context struct {
	Topo    *topo.Network
	Configs map[string]*netcfg.Config
	Files   map[string]*netcfg.File
	Net     *bgp.Net
	Outcome *bgp.Outcome
	Prov    *provenance.Graph
	Report  *verify.Report
	Matrix  *coverage.Matrix
	Ranks   []sbfl.Score
	// Universe is the prefix vocabulary for symbolic variables: every
	// originated prefix plus every intent prefix.
	Universe []netip.Prefix
	Rand     *rand.Rand
}

// NewContext exposes context construction to the baselines and tools that
// drive templates outside the engine loop.
func NewContext(p Problem, iv *verify.Incremental, formula sbfl.Formula, rng *rand.Rand) *Context {
	return buildContext(p, iv, formula, rng)
}

// buildContext compiles, simulates, verifies, and localizes one
// configuration version. It reuses the incremental verifier's base state.
func buildContext(p Problem, iv *verify.Incremental, formula sbfl.Formula, rng *rand.Rand) *Context {
	ctx := &Context{
		Topo:    p.Topo,
		Configs: iv.BaseConfigs(),
		Files:   iv.BaseFiles(),
		Net:     iv.BaseNet(),
		Outcome: iv.BaseOutcome(),
		Prov:    iv.BaseProvenance(),
		Report:  iv.BaseReport(),
		Rand:    rng,
	}
	ctx.Matrix = coverage.Build(ctx.Net, ctx.Prov, ctx.Report)
	ctx.Ranks = sbfl.Rank(ctx.Matrix, formula)
	seen := map[netip.Prefix]bool{}
	for _, pfx := range ctx.Net.AllPrefixes() {
		if !seen[pfx] {
			seen[pfx] = true
			ctx.Universe = append(ctx.Universe, pfx)
		}
	}
	for _, in := range p.Intents {
		for _, pfx := range []netip.Prefix{in.SrcPrefix, in.DstPrefix} {
			if pfx.IsValid() && !seen[pfx.Masked()] {
				seen[pfx.Masked()] = true
				ctx.Universe = append(ctx.Universe, pfx.Masked())
			}
		}
	}
	return ctx
}

// FailingVerdicts returns the failing verdicts of this version.
func (ctx *Context) FailingVerdicts() []verify.Verdict { return ctx.Report.Failed() }

// CoversLine reports whether the line is covered by at least one failing
// test — templates use it to avoid proposing changes unrelated to any
// failure.
func (ctx *Context) CoversLine(l netcfg.LineRef) bool {
	for _, t := range ctx.Matrix.Tests {
		if !t.Pass && t.Lines[l] {
			return true
		}
	}
	return false
}

// LinesOfPrefixAtDevice returns the provenance lines of prefix pfx
// restricted to one device, as a set.
func (ctx *Context) LinesOfPrefixAtDevice(pfx netip.Prefix, device string) map[int]bool {
	out := map[int]bool{}
	for _, l := range ctx.Prov.LinesForPrefix(pfx) {
		if l.Device == device {
			out[l.Line] = true
		}
	}
	return out
}

// Update is one candidate fix: a set of line edits per device, relative to
// the configuration version of the Context that generated it.
type Update struct {
	Edits []netcfg.EditSet
	// Desc records which template produced it, anchored where — the
	// repair report's narrative.
	Desc string
}

// Template is one change operator family (§4.2): it decides which
// suspicious lines it can anchor at and generates candidate updates,
// typically by symbolizing a variable and solving its value locally.
type Template interface {
	Name() string
	// ErrorClass is the Table 1 misconfiguration class this template
	// repairs, for reports.
	ErrorClass() string
	// Generate produces candidates anchored at the given suspicious line
	// (empty when the template does not apply there).
	Generate(ctx *Context, line netcfg.LineRef) []Update
}
