package core

import (
	"math/rand"
	"net/netip"

	"acr/internal/analysis"
	"acr/internal/bgp"
	"acr/internal/coverage"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/provenance"
	"acr/internal/sbfl"
	"acr/internal/topo"
	"acr/internal/verify"
)

// Problem is a repair task: a network whose configurations violate some
// intents.
type Problem struct {
	Topo    *topo.Network
	Configs map[string]*netcfg.Config
	Intents []verify.Intent
}

// Context is everything a change template may consult when generating
// candidates for one configuration version: the compiled and simulated
// network, its provenance, the verification report, and the coverage
// spectrum. Contexts are built once per preserved candidate.
type Context struct {
	Topo    *topo.Network
	Configs map[string]*netcfg.Config
	Files   map[string]*netcfg.File
	Net     *bgp.Net
	Outcome *bgp.Outcome
	Prov    *provenance.Graph
	Report  *verify.Report
	Matrix  *coverage.Matrix
	Ranks   []sbfl.Score
	// Diags holds the static-analysis findings over this configuration
	// version (empty when the prior is disabled).
	Diags []analysis.Diagnostic
	// DiagClasses maps each diagnosed line to the set of Table 1 error
	// classes flagged there — the generation stage prunes templates whose
	// ErrorClass does not match.
	DiagClasses map[netcfg.LineRef]map[errclass.Class]bool
	// PriorSeeded counts statically flagged lines that no sampled test
	// covered and were injected into Ranks with the prior as score.
	PriorSeeded int
	// Universe is the prefix vocabulary for symbolic variables: every
	// originated prefix plus every intent prefix.
	Universe []netip.Prefix
	Rand     *rand.Rand
}

// NewContext exposes context construction to the baselines and tools that
// drive templates outside the engine loop. It builds the pure-SBFL
// context — no static prior — so localization metrics measure Eq. 1
// alone.
func NewContext(p Problem, iv *verify.Incremental, formula sbfl.Formula, rng *rand.Rand) *Context {
	return buildContext(p, iv, formula, rng, false)
}

// priorWeight maps diagnostic severities to prior strength: an Error is a
// near-certain misconfiguration, a Warning a consensus violation, an Info
// a hint. All clear MinSusp's default (0.45) so flagged-but-uncovered
// lines stay in the fix stage's scope.
func priorWeight(s analysis.Severity) float64 {
	switch s {
	case analysis.Error:
		return 0.8
	case analysis.Warning:
		return 0.55
	default:
		return 0.25
	}
}

// buildContext compiles, simulates, verifies, and localizes one
// configuration version. It reuses the incremental verifier's base state.
// With usePrior, static-analysis diagnostics are folded into the ranking
// (see sbfl.ApplyPrior) and recorded for template pruning.
func buildContext(p Problem, iv *verify.Incremental, formula sbfl.Formula, rng *rand.Rand, usePrior bool) *Context {
	ctx := &Context{
		Topo:    p.Topo,
		Configs: iv.BaseConfigs(),
		Files:   iv.BaseFiles(),
		Net:     iv.BaseNet(),
		Outcome: iv.BaseOutcome(),
		Prov:    iv.BaseProvenance(),
		Report:  iv.BaseReport(),
		Rand:    rng,
	}
	ctx.Matrix = coverage.Build(ctx.Net, ctx.Prov, ctx.Report)
	ctx.Ranks = sbfl.Rank(ctx.Matrix, formula)
	if usePrior {
		res := analysis.AnalyzeFiles(p.Topo, ctx.Configs, ctx.Files, nil)
		if len(res.Diagnostics) > 0 {
			ctx.Diags = res.Diagnostics
			ctx.DiagClasses = map[netcfg.LineRef]map[errclass.Class]bool{}
			prior := map[netcfg.LineRef]float64{}
			for i := range res.Diagnostics {
				d := &res.Diagnostics[i]
				if d.Class != "" {
					if ctx.DiagClasses[d.Line] == nil {
						ctx.DiagClasses[d.Line] = map[errclass.Class]bool{}
					}
					ctx.DiagClasses[d.Line][d.Class] = true
				}
				if w := priorWeight(d.Severity); w > prior[d.Line] {
					prior[d.Line] = w
				}
			}
			ctx.Ranks, ctx.PriorSeeded = sbfl.ApplyPrior(ctx.Ranks, prior)
		}
	}
	seen := map[netip.Prefix]bool{}
	for _, pfx := range ctx.Net.AllPrefixes() {
		if !seen[pfx] {
			seen[pfx] = true
			ctx.Universe = append(ctx.Universe, pfx)
		}
	}
	for _, in := range p.Intents {
		for _, pfx := range []netip.Prefix{in.SrcPrefix, in.DstPrefix} {
			if pfx.IsValid() && !seen[pfx.Masked()] {
				seen[pfx.Masked()] = true
				ctx.Universe = append(ctx.Universe, pfx.Masked())
			}
		}
	}
	return ctx
}

// FailingVerdicts returns the failing verdicts of this version.
func (ctx *Context) FailingVerdicts() []verify.Verdict { return ctx.Report.Failed() }

// CoversLine reports whether the line is covered by at least one failing
// test — templates use it to avoid proposing changes unrelated to any
// failure.
func (ctx *Context) CoversLine(l netcfg.LineRef) bool {
	for _, t := range ctx.Matrix.Tests {
		if !t.Pass && t.Lines[l] {
			return true
		}
	}
	return false
}

// LinesOfPrefixAtDevice returns the provenance lines of prefix pfx
// restricted to one device, as a set.
func (ctx *Context) LinesOfPrefixAtDevice(pfx netip.Prefix, device string) map[int]bool {
	out := map[int]bool{}
	for _, l := range ctx.Prov.LinesForPrefix(pfx) {
		if l.Device == device {
			out[l.Line] = true
		}
	}
	return out
}

// Update is one candidate fix: a set of line edits per device, relative to
// the configuration version of the Context that generated it.
type Update struct {
	Edits []netcfg.EditSet
	// Desc records which template produced it, anchored where — the
	// repair report's narrative.
	Desc string
}

// Template is one change operator family (§4.2): it decides which
// suspicious lines it can anchor at and generates candidate updates,
// typically by symbolizing a variable and solving its value locally.
type Template interface {
	Name() string
	// ErrorClass is the Table 1 misconfiguration class this template
	// repairs — the static prior prunes applications whose anchor line
	// carries a diagnostic of a different class.
	ErrorClass() errclass.Class
	// Generate produces candidates anchored at the given suspicious line
	// (empty when the template does not apply there).
	Generate(ctx *Context, line netcfg.LineRef) []Update
}

// DescribedTemplate is a Template resolved through the template registry
// (internal/tmplreg): it additionally exposes the digest of its registry
// descriptor — name, description, error class, use-case, version,
// provenance. SearchDigest folds the descriptor digest of every described
// template into the options fingerprint, so a journaled session refuses
// to resume — and the fleet refuses to dedup — against a template set
// whose registry metadata changed, not just one whose names changed.
type DescribedTemplate interface {
	Template
	DescriptorDigest() string
}
