package core

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"acr/internal/bgp"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/verify"
)

// ctxFor builds a Context for a scenario (unit-level template testing).
func ctxFor(t *testing.T, s *scenario.Scenario) *Context {
	t.Helper()
	p := Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	return buildContext(p, iv, sbfl.Tarantula, rand.New(rand.NewSource(1)), false)
}

func TestBuiltinTemplatesCoverAllClasses(t *testing.T) {
	ts := BuiltinTemplates()
	if len(ts) < 9 {
		t.Fatalf("only %d templates", len(ts))
	}
	names := map[string]bool{}
	classes := map[errclass.Class]bool{}
	for _, tm := range ts {
		if names[tm.Name()] {
			t.Errorf("duplicate template name %q", tm.Name())
		}
		names[tm.Name()] = true
		classes[tm.ErrorClass()] = true
	}
	// All Table 1 class labels appear.
	for _, want := range errclass.All() {
		if !classes[want] {
			t.Errorf("no template for class %q", want)
		}
	}
	if templateNames(ts) == "" {
		t.Error("templateNames empty")
	}
}

func TestSymbolizePrefixListSolvesPaperValues(t *testing.T) {
	ctx := ctxFor(t, scenario.Figure2())
	anchor := netcfg.LineRef{Device: "A", Line: scenario.FigureALinePrefixList}
	ups := SymbolizePrefixList{}.Generate(ctx, anchor)
	if len(ups) != 1 {
		t.Fatalf("got %d updates, want 1", len(ups))
	}
	up := ups[0]
	for _, want := range []string{"10.70.0.0/16 ∈ var", "20.0.0.0/16 ∈ var", "¬(10.0.0.0/16 ∈ var)"} {
		if !strings.Contains(up.Desc, want) {
			t.Errorf("desc %q missing constraint %q", up.Desc, want)
		}
	}
	// Applying the edit yields permits for exactly the two prefixes.
	next, err := up.Edits[0].Apply(ctx.Configs["A"])
	if err != nil {
		t.Fatal(err)
	}
	f := netcfg.MustParse(next)
	entries := f.PrefixListEntries("default_all")
	if len(entries) != 2 || entries[0].Prefix != scenario.PrefixPoPA || entries[1].Prefix != scenario.PrefixDCNS {
		t.Errorf("entries = %+v", entries)
	}
}

func TestSymbolizePrefixListAnchorsFromPolicyLines(t *testing.T) {
	ctx := ctxFor(t, scenario.Figure2())
	anchors := []netcfg.LineRef{
		{Device: "A", Line: scenario.FigureALineDCNImport}, // attach
		{Device: "A", Line: scenario.FigureALinePolicy},    // node
		{Device: "A", Line: scenario.FigureALineOverwrite}, // apply
		{Device: "A", Line: 14},                            // match
	}
	for _, a := range anchors {
		ups := SymbolizePrefixList{}.Generate(ctx, a)
		if len(ups) == 0 {
			t.Errorf("anchor %v produced no updates", a)
		}
	}
}

func TestSymbolizePrefixListNoFailingInvolvement(t *testing.T) {
	// On a correct network nothing should be generated (no failing
	// constraints → rewriting cannot help).
	ctx := ctxFor(t, scenario.Figure2Correct())
	anchor := netcfg.LineRef{Device: "A", Line: scenario.FigureALinePrefixList}
	if ups := (SymbolizePrefixList{}).Generate(ctx, anchor); len(ups) != 0 {
		t.Errorf("correct network produced %d updates", len(ups))
	}
}

func TestFixPeerASNOnlyOnFailedSessions(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	f := netcfg.MustParse(s.Configs["pop0"])
	peer := f.BGP.Peers[0]
	// Healthy session: no update.
	ctx := ctxFor(t, s)
	anchor := netcfg.LineRef{Device: "pop0", Line: peer.ASNLine}
	if ups := (FixPeerASN{}).Generate(ctx, anchor); len(ups) != 0 {
		t.Fatalf("healthy session produced %d ASN fixes", len(ups))
	}
	// Break it.
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At: peer.ASNLine, Text: " peer " + peer.Addr.String() + " as-number 63000",
	}}}.Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop0"] = next
	ctx = ctxFor(t, s)
	ups := FixPeerASN{}.Generate(ctx, anchor)
	if len(ups) != 1 {
		t.Fatalf("broken session produced %d fixes, want 1", len(ups))
	}
	fixed, err := ups[0].Edits[0].Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	f2 := netcfg.MustParse(fixed)
	// The solved ASN equals the neighbor's actual AS.
	var neighborASN uint32
	for _, adj := range s.Topo.Adjacencies("pop0") {
		if adj.PeerAddr == peer.Addr {
			neighborASN = netcfg.MustParse(s.Configs[adj.PeerNode]).BGP.ASN
		}
	}
	if f2.BGP.Peers[0].ASN != neighborASN {
		t.Errorf("solved ASN = %d, want %d", f2.BGP.Peers[0].ASN, neighborASN)
	}
}

func TestAddRedistributeRequiresRelevantFailure(t *testing.T) {
	// Statics exist and redistribution missing, but no failing intent
	// overlaps them → no candidate.
	s := scenario.Figure2() // failing test is 10.0/16, unrelated to statics
	cfg := s.Configs["PoP-A"]
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: cfg.NumLines() + 1, Text: "ip route static 77.0.0.0/16 null0"},
	}}.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["PoP-A"] = next
	ctx := ctxFor(t, s)
	f := ctx.Files["PoP-A"]
	anchor := netcfg.LineRef{Device: "PoP-A", Line: f.Statics[0].Line}
	if ups := (AddRedistribute{}).Generate(ctx, anchor); len(ups) != 0 {
		t.Errorf("irrelevant static produced %d redistribute candidates", len(ups))
	}
}

func TestRemovePBRRuleDeletesWholeBlock(t *testing.T) {
	s := scenario.DCN(4, scenario.GenOptions{WithScrubber: true})
	ctx := ctxFor(t, s)
	f := ctx.Files["spine0-0"]
	pol := f.PBRPolicyByName("Scrub")
	r := pol.Rules[0]
	ups := RemovePBRRule{}.Generate(ctx, netcfg.LineRef{Device: "spine0-0", Line: r.Line + 1})
	if len(ups) != 1 {
		t.Fatalf("updates = %d", len(ups))
	}
	if got := len(ups[0].Edits[0].Edits); got != r.End-r.Line+1 {
		t.Errorf("deleted %d lines, want %d", got, r.End-r.Line+1)
	}
}

func TestAddPeerToGroupGeneratesPerGroup(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	// Remove pop0's membership on its backbone router to create an
	// ungrouped peer.
	var victim string
	var memberLine, asnLine int
	for d, c := range s.Configs {
		f := netcfg.MustParse(c)
		if f.BGP == nil {
			continue
		}
		for _, pe := range f.BGP.Peers {
			if pe.Group == scenario.WANGroupPoPFacing {
				victim, memberLine, asnLine = d, pe.GroupLine, pe.ASNLine
			}
		}
		if victim != "" {
			break
		}
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: memberLine}}}.Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs[victim] = next
	ctx := ctxFor(t, s)
	f := ctx.Files[victim]
	nGroups := len(f.BGP.Groups)
	if asnLine > memberLine {
		asnLine--
	}
	ups := AddPeerToGroup{}.Generate(ctx, netcfg.LineRef{Device: victim, Line: asnLine})
	if len(ups) != nGroups {
		t.Errorf("updates = %d, want one per group (%d)", len(ups), nGroups)
	}
}

func TestCopyPolicyFromRoleReconstructsBlock(t *testing.T) {
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	// Find a backbone router with the NoLeak policy attached and delete
	// the definition (both nodes), leaving a dangling attach.
	var victim string
	for d, c := range s.Configs {
		f := netcfg.MustParse(c)
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g != nil && len(g.Policies) > 0 && len(f.PolicyNodes(scenario.WANPolicyNoLeak)) > 0 {
			victim = d
			break
		}
	}
	if victim == "" {
		t.Fatal("no victim")
	}
	f := netcfg.MustParse(s.Configs[victim])
	var dels []netcfg.Edit
	for _, node := range f.PolicyNodes(scenario.WANPolicyNoLeak) {
		for l := node.Line; l <= node.End; l++ {
			dels = append(dels, netcfg.DeleteLine{At: l})
		}
	}
	next, err := netcfg.EditSet{Edits: dels}.Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs[victim] = next
	ctx := ctxFor(t, s)
	f2 := ctx.Files[victim]
	g := f2.GroupByName(scenario.WANGroupPoPFacing)
	anchor := netcfg.LineRef{Device: victim, Line: g.Policies[0].Line}
	ups := CopyPolicyFromRole{}.Generate(ctx, anchor)
	if len(ups) != 1 {
		t.Fatalf("updates = %d, want 1", len(ups))
	}
	fixed, err := ups[0].Edits[0].Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	f3 := netcfg.MustParse(fixed)
	if len(f3.PolicyNodes(scenario.WANPolicyNoLeak)) == 0 {
		t.Error("policy not reconstructed")
	}
	if !strings.Contains(ups[0].Desc, "copied from") {
		t.Errorf("desc = %q", ups[0].Desc)
	}
}

func TestMergeUpdates(t *testing.T) {
	a := Update{Edits: []netcfg.EditSet{{Device: "A", Edits: []netcfg.Edit{netcfg.DeleteLine{At: 1}}}}, Desc: "a"}
	b := Update{Edits: []netcfg.EditSet{{Device: "B", Edits: []netcfg.Edit{netcfg.DeleteLine{At: 2}}}}, Desc: "b"}
	c := Update{Edits: []netcfg.EditSet{{Device: "A", Edits: []netcfg.Edit{netcfg.DeleteLine{At: 3}}}}, Desc: "c"}
	if m, ok := mergeUpdates(a, b); !ok || len(m.Edits) != 2 {
		t.Errorf("disjoint merge failed: %v %v", m, ok)
	}
	if _, ok := mergeUpdates(a, c); ok {
		t.Error("same-device merge should fail")
	}
	if _, ok := mergeUpdates(a, a); ok {
		t.Error("self merge should fail")
	}
}

func TestApplyUpdateIsolation(t *testing.T) {
	base := map[string]*netcfg.Config{"A": netcfg.NewConfig("A", "x\ny\n")}
	up := Update{Edits: []netcfg.EditSet{{Device: "A", Edits: []netcfg.Edit{netcfg.DeleteLine{At: 1}}}}}
	out := applyUpdate(base, up)
	if out["A"].NumLines() != 1 || base["A"].NumLines() != 2 {
		t.Error("applyUpdate mutated base or failed")
	}
}

func TestContextUniverseIncludesIntentPrefixes(t *testing.T) {
	s := scenario.Figure2()
	s.Intents = append(s.Intents, verify.ReachIntent("extra", scenario.PrefixDCNS, netip.MustParsePrefix("44.0.0.0/16")))
	ctx := ctxFor(t, s)
	found := false
	for _, p := range ctx.Universe {
		if p == netip.MustParsePrefix("44.0.0.0/16") {
			found = true
		}
	}
	if !found {
		t.Errorf("universe %v missing intent prefix", ctx.Universe)
	}
}
