package core_test

import (
	"sync"
	"testing"

	"acr/internal/core"
	"acr/internal/scenario"
)

// fakeStore is an in-memory core.EvalStore with fault knobs, so the
// engine-side contract is tested without touching disk (internal/evalstore
// has its own tests; internal/chaos tests the two together).
type fakeStore struct {
	mu         sync.Mutex
	m          map[string]int
	gets, puts int
	corruptAll bool // every Get reports a corrupt (quarantined) entry
	failAll    bool // every Get misses and every Put drops (I/O fault)
}

func newFakeStore() *fakeStore { return &fakeStore{m: map[string]int{}} }

func (f *fakeStore) Get(digest string) (int, bool, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.corruptAll {
		delete(f.m, digest) // quarantine semantics: never answered twice
		return 0, false, true
	}
	if f.failAll {
		return 0, false, false
	}
	fit, ok := f.m[digest]
	return fit, ok, false
}

func (f *fakeStore) Put(digest string, fitness int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.failAll {
		return
	}
	if _, ok := f.m[digest]; !ok {
		f.m[digest] = fitness
	}
}

func (f *fakeStore) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// TestStoreWarmByteIdentity is the tentpole invariant at the engine layer:
// a run writing through a cold store, a run answered by the warm store,
// and a run with no store at all produce byte-identical Canonical() output
// — the store moves evaluations off the simulator without touching one
// decision. The cost counters are where the store is allowed to show.
func TestStoreWarmByteIdentity(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	base := core.Options{Strategy: core.BruteForce, Parallelism: 1}

	cold := core.Repair(p, base)
	if !cold.Feasible {
		t.Fatalf("baseline infeasible: %s", cold.Summary())
	}
	if cold.StoreHits+cold.StoreMisses+cold.StoreCorrupt != 0 {
		t.Fatalf("storeless run counted store traffic: %s", cold.Summary())
	}

	st := newFakeStore()
	populate := base
	populate.Store = st
	first := core.Repair(p, populate)
	if got, want := first.Canonical(), cold.Canonical(); got != want {
		t.Fatalf("cold-store run diverges from storeless run\n--- storeless ---\n%s\n--- cold store ---\n%s", want, got)
	}
	if first.StoreHits != 0 || first.StoreMisses != first.CacheMisses {
		t.Fatalf("cold store counters: hits=%d misses=%d cacheMisses=%d",
			first.StoreHits, first.StoreMisses, first.CacheMisses)
	}
	if st.len() == 0 {
		t.Fatal("cold-store run wrote nothing back")
	}

	warm := core.Repair(p, populate)
	if got, want := warm.Canonical(), cold.Canonical(); got != want {
		t.Fatalf("warm-store run diverges from storeless run\n--- storeless ---\n%s\n--- warm ---\n%s", want, got)
	}
	if warm.StoreMisses != 0 {
		t.Fatalf("warm store still missed %d times", warm.StoreMisses)
	}
	if warm.StoreHits != warm.CacheMisses || warm.StoreHits == 0 {
		t.Fatalf("warm store hits=%d, want every in-memory miss (%d) answered", warm.StoreHits, warm.CacheMisses)
	}
	if warm.PrefixSimulations >= first.PrefixSimulations {
		t.Fatalf("warm store saved no simulations: warm=%d cold=%d",
			warm.PrefixSimulations, first.PrefixSimulations)
	}
}

// TestParallelStoreDeterminism pins -p 1 ≡ -p N over a warm store: store
// reads happen at batch classification on the engine goroutine, so the
// worker count must not change which candidates the store answers.
func TestParallelStoreDeterminism(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	st := newFakeStore()
	opts := core.Options{Strategy: core.BruteForce, Parallelism: 1, Store: st}
	core.Repair(p, opts) // populate

	serial := core.Repair(p, opts)
	for _, workers := range []int{4, 8} {
		par := opts
		par.Parallelism = workers
		res := core.Repair(p, par)
		if res.Canonical() != serial.Canonical() {
			t.Errorf("-p %d over warm store diverges from -p 1\n--- p1 ---\n%s\n--- p%d ---\n%s",
				workers, serial.Canonical(), workers, res.Canonical())
		}
		if res.StoreHits != serial.StoreHits || res.StoreMisses != serial.StoreMisses {
			t.Errorf("-p %d store counters hits=%d misses=%d, want hits=%d misses=%d",
				workers, res.StoreHits, res.StoreMisses, serial.StoreHits, serial.StoreMisses)
		}
	}
}

// TestStoreFaultsAreInvisible runs the engine against a store that is
// all-corrupt, then one that fails every I/O: both must produce the
// storeless run's bytes, with the damage visible only in cost counters.
func TestStoreFaultsAreInvisible(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	base := core.Options{Strategy: core.BruteForce, Parallelism: 1}
	want := core.Repair(p, base).Canonical()

	corrupt := newFakeStore()
	corrupt.corruptAll = true
	opts := base
	opts.Store = corrupt
	res := core.Repair(p, opts)
	if res.Canonical() != want {
		t.Fatalf("all-corrupt store changed the result\n--- want ---\n%s\n--- got ---\n%s", want, res.Canonical())
	}
	if res.StoreCorrupt == 0 || res.StoreHits != 0 {
		t.Fatalf("all-corrupt store counters: %s", res.Summary())
	}

	failing := newFakeStore()
	failing.failAll = true
	opts.Store = failing
	res = core.Repair(p, opts)
	if res.Canonical() != want {
		t.Fatalf("all-failing store changed the result\n--- want ---\n%s\n--- got ---\n%s", want, res.Canonical())
	}
	if res.StoreHits != 0 || res.StoreMisses != res.CacheMisses {
		t.Fatalf("all-failing store counters: %s", res.Summary())
	}
}

// TestNoCacheBypassesStore: the -no-cache ablation measures a run with no
// caching of any kind, so the persistent store must see zero traffic.
func TestNoCacheBypassesStore(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	st := newFakeStore()
	st.m["deadbeef"] = 1 // anything in here must stay unread
	res := core.Repair(p, core.Options{Strategy: core.BruteForce, Parallelism: 1, NoCache: true, Store: st})
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Summary())
	}
	if st.gets != 0 || st.puts != 0 {
		t.Fatalf("NoCache run touched the store: gets=%d puts=%d", st.gets, st.puts)
	}
	if res.StoreHits+res.StoreMisses+res.StoreCorrupt != 0 {
		t.Fatalf("NoCache run counted store traffic: %s", res.Summary())
	}
}

// TestSearchDigestExcludesStore: the store is infrastructure, not search
// steering — a journaled session must resume under a different cache
// directory, budget, or no store at all (the Parallelism precedent).
func TestSearchDigestExcludesStore(t *testing.T) {
	base := core.Options{Seed: 7, MaxIterations: 40}
	with := base
	with.Store = newFakeStore()
	if base.SearchDigest() != with.SearchDigest() {
		t.Fatal("Options.Store changed SearchDigest; resume across cache configurations would refuse")
	}
	nocache := base
	nocache.NoCache = true
	if base.SearchDigest() == nocache.SearchDigest() {
		t.Fatal("NoCache must stay inside SearchDigest")
	}
}
