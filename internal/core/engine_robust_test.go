package core_test

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"acr/internal/core"
	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/tmplreg"
	"acr/internal/scenario"
)

// assertBestEffort checks the invariants every termination path must
// uphold: BestEffort* populated, fitness never regressing, Improved
// consistent.
func assertBestEffort(t *testing.T, res *core.Result) {
	t.Helper()
	if res.BestEffortConfigs == nil {
		t.Fatalf("termination %q: BestEffortConfigs nil", res.Termination)
	}
	if res.BestEffortFitness > res.BaseFailing {
		t.Fatalf("termination %q: best-effort fitness %d regressed past base %d",
			res.Termination, res.BestEffortFitness, res.BaseFailing)
	}
	if res.Improved != (res.BestEffortFitness < res.BaseFailing) {
		t.Fatalf("termination %q: Improved=%v inconsistent with fitness %d vs base %d",
			res.Termination, res.Improved, res.BestEffortFitness, res.BaseFailing)
	}
	if res.Feasible {
		if res.BestEffortFitness != 0 {
			t.Fatalf("feasible run with best-effort fitness %d", res.BestEffortFitness)
		}
		for d, c := range res.FinalConfigs {
			if res.BestEffortConfigs[d] != c {
				t.Fatalf("feasible run: BestEffortConfigs diverges from FinalConfigs on %s", d)
			}
		}
	}
}

// TestTerminationFeasible: the happy path populates best-effort too.
func TestTerminationFeasible(t *testing.T) {
	res := core.Repair(problemOf(scenario.Figure2()), core.Options{Strategy: core.BruteForce})
	if res.Termination != "feasible" || !res.Feasible {
		t.Fatalf("termination %q feasible=%v, want feasible", res.Termination, res.Feasible)
	}
	if !res.Improved {
		t.Error("feasible repair of a failing base must report Improved")
	}
	assertBestEffort(t, res)
}

// TestTerminationFeasibleOnCleanBase: a base with nothing failing is
// immediately feasible with zero iterations.
func TestTerminationFeasibleOnCleanBase(t *testing.T) {
	res := core.Repair(problemOf(scenario.Figure2Correct()), core.Options{Strategy: core.BruteForce})
	if res.Termination != "feasible" || !res.Feasible || res.Iterations != 0 {
		t.Fatalf("got termination=%q feasible=%v iterations=%d", res.Termination, res.Feasible, res.Iterations)
	}
	if res.Improved {
		t.Error("clean base cannot be Improved")
	}
	assertBestEffort(t, res)
}

// TestTerminationExhausted: an empty template vocabulary generates
// nothing; after widening maxes out the run ends "exhausted" with the
// base as best effort.
func TestTerminationExhausted(t *testing.T) {
	res := core.Repair(problemOf(scenario.Figure2()),
		core.Options{Strategy: core.BruteForce, Templates: []core.Template{}})
	if res.Termination != "exhausted" || res.Feasible {
		t.Fatalf("termination %q feasible=%v, want exhausted", res.Termination, res.Feasible)
	}
	if res.Improved {
		t.Error("no candidates were validated, Improved must be false")
	}
	assertBestEffort(t, res)
}

// noopTemplate replaces the anchored line with its own text: candidates
// validate with unchanged fitness, so they are preserved but the search
// never progresses — the run must hit the iteration cap.
type noopTemplate struct{}

func (noopTemplate) Name() string               { return "noop" }
func (noopTemplate) ErrorClass() errclass.Class { return "test" }
func (noopTemplate) Generate(ctx *core.Context, line netcfg.LineRef) []core.Update {
	return []core.Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
			netcfg.ReplaceLine{At: line.Line, Text: ctx.Configs[line.Device].Line(line.Line)},
		}}},
		Desc: "test: noop " + line.String(),
	}}
}

// TestTerminationIterationCap: a template that never progresses ends on
// "iteration-cap" while preserving best-effort invariants.
func TestTerminationIterationCap(t *testing.T) {
	res := core.Repair(problemOf(scenario.Figure2()), core.Options{
		Strategy:      core.BruteForce,
		MaxIterations: 2,
		Templates:     []core.Template{noopTemplate{}},
	})
	if res.Feasible {
		t.Fatal("noop template cannot repair anything")
	}
	if res.Termination != "iteration-cap" {
		t.Fatalf("termination %q, want iteration-cap", res.Termination)
	}
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
	assertBestEffort(t, res)
}

// slowSims returns options whose per-prefix simulations sleep, so a
// millisecond-scale deadline reliably trips mid-run (the bare Figure 2
// repair finishes in well under a millisecond).
func slowSims(opts core.Options, d time.Duration) core.Options {
	opts.SimOpts.PrefixHook = func(netip.Prefix) { time.Sleep(d) }
	return opts
}

// TestTerminationDeadline: acceptance requirement — a 1ms deadline
// returns within 100ms with Termination == "deadline".
func TestTerminationDeadline(t *testing.T) {
	start := time.Now()
	res := core.RepairContext(context.Background(), problemOf(scenario.Figure2()),
		slowSims(core.Options{MaxWallClock: time.Millisecond}, time.Millisecond))
	elapsed := time.Since(start)
	if res.Termination != "deadline" {
		t.Fatalf("termination %q, want deadline (%s)", res.Termination, res.Summary())
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("1ms deadline honored in %s, want < 100ms", elapsed)
	}
	assertBestEffort(t, res)
	if len(res.Errors) == 0 || res.Errors[len(res.Errors)-1].Kind != core.KindDeadline {
		t.Error("deadline termination must record a KindDeadline error")
	}
}

// TestTerminationDeadlineViaAbsoluteTime: Options.Deadline behaves like
// MaxWallClock.
func TestTerminationDeadlineViaAbsoluteTime(t *testing.T) {
	res := core.RepairContext(context.Background(), problemOf(scenario.Figure2()),
		slowSims(core.Options{Deadline: time.Now().Add(time.Millisecond)}, time.Millisecond))
	if res.Termination != "deadline" {
		t.Fatalf("termination %q, want deadline", res.Termination)
	}
	assertBestEffort(t, res)
}

// TestTerminationCanceled: a pre-canceled context stops the run
// immediately with Termination "canceled".
func TestTerminationCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := core.RepairContext(ctx, problemOf(scenario.Figure2()), core.Options{})
	if res.Termination != "canceled" {
		t.Fatalf("termination %q, want canceled", res.Termination)
	}
	assertBestEffort(t, res)
	if len(res.Errors) == 0 || res.Errors[len(res.Errors)-1].Kind != core.KindCanceled {
		t.Error("canceled termination must record a KindCanceled error")
	}
}

// TestRepairContextMatchesRepair: with no bounds set, the context-aware
// entry point is behaviorally identical to Repair.
func TestRepairContextMatchesRepair(t *testing.T) {
	p := problemOf(scenario.Figure2())
	a := core.Repair(p, core.Options{Strategy: core.BruteForce})
	b := core.RepairContext(context.Background(), p, core.Options{Strategy: core.BruteForce})
	if a.Feasible != b.Feasible || a.Termination != b.Termination ||
		a.Iterations != b.Iterations || a.CandidatesValidated != b.CandidatesValidated {
		t.Fatalf("divergence: %s vs %s", a.Summary(), b.Summary())
	}
}

// panicTemplate always panics when generating; the engine must quarantine
// it and keep searching with the healthy templates.
type panicTemplate struct{}

func (panicTemplate) Name() string               { return "panic" }
func (panicTemplate) ErrorClass() errclass.Class { return "test" }
func (panicTemplate) Generate(*core.Context, netcfg.LineRef) []core.Update {
	panic("template bug")
}

// TestPanickingTemplateQuarantined: a hostile template cannot kill the
// run, and its panics are accounted.
func TestPanickingTemplateQuarantined(t *testing.T) {
	tmpls := append([]core.Template{panicTemplate{}}, tmplreg.Default.EngineTemplates()...)
	res := core.Repair(problemOf(scenario.Figure2()),
		core.Options{Strategy: core.BruteForce, Templates: tmpls})
	if !res.Feasible {
		t.Fatalf("engine failed with a panicking template present: %s", res.Summary())
	}
	if res.CandidatesPanicked == 0 {
		t.Fatal("panicking template not accounted in CandidatesPanicked")
	}
	foundGenerate := false
	for _, e := range res.Errors {
		if e.Kind == core.KindCandidatePanic && e.Op == "generate" {
			foundGenerate = true
			if len(e.Stack) == 0 {
				t.Error("generate panic missing stack")
			}
		}
	}
	if !foundGenerate {
		t.Error("no generate-stage candidate-panic recorded")
	}
	assertBestEffort(t, res)
}

// TestErrorsCapped: Result.Errors stays bounded no matter how many faults
// occur; the counter keeps the full tally.
func TestErrorsCapped(t *testing.T) {
	tmpls := []core.Template{panicTemplate{}}
	res := core.Repair(problemOf(scenario.Figure2()),
		core.Options{Strategy: core.BruteForce, Templates: tmpls, MaxIterations: 3})
	if len(res.Errors) > 16 {
		t.Fatalf("Errors len = %d, want <= 16", len(res.Errors))
	}
	if res.CandidatesPanicked < len(res.Errors) {
		t.Fatalf("counter %d below stored errors %d", res.CandidatesPanicked, len(res.Errors))
	}
}
