package core

import (
	"strings"
	"testing"

	"acr/internal/netcfg"
)

const classifyFixture = `bgp 65001
 router-id 1.0.0.1
 peer 172.16.0.2 as-number 65002
 peer 172.16.0.2 group Side
 peer 172.16.0.2 route-policy Pol import
 peer-group Side route-policy Pol export
 network 10.0.0.0/16
 redistribute static
route-policy Pol permit node 10
 match ip-prefix L
 apply local-preference 200
ip prefix-list L index 10 permit 10.0.0.0/16
ip route static 20.0.0.0/16 null0
pbr policy P
 rule 10 permit
  match source 10.0.0.0/16
  apply drop
interface eth0
 ip address 172.16.0.1/30
 pbr policy P
`

func TestClassifyRoles(t *testing.T) {
	f := netcfg.MustParse(netcfg.NewConfig("X", classifyFixture))
	cases := []struct {
		line int
		want LineRole
	}{
		{1, RoleBGPHeader},
		{2, RoleUnknown}, // router-id has no repair role
		{3, RolePeerASN},
		{4, RolePeerGroupMembership},
		{5, RolePolicyAttach},
		{6, RolePolicyAttach},
		{7, RoleNetworkStmt},
		{8, RoleRedistribute},
		{9, RolePolicyNode},
		{10, RolePolicyMatch},
		{11, RolePolicyApply},
		{12, RolePrefixListEntry},
		{13, RoleStaticRoute},
		{14, RolePBRPolicy},
		{15, RolePBRRule},
		{16, RolePBRRuleBody},
		{17, RolePBRRuleBody},
		{18, RoleInterface},
		{19, RoleInterface},
		{20, RoleInterface},
	}
	for _, tc := range cases {
		if got := Classify(f, tc.line); got != tc.want {
			t.Errorf("Classify(line %d %q) = %v, want %v",
				tc.line, strings.TrimSpace(strings.Split(classifyFixture, "\n")[tc.line-1]), got, tc.want)
		}
	}
}

func TestClassifyNilFile(t *testing.T) {
	if got := Classify(nil, 1); got != RoleUnknown {
		t.Errorf("Classify(nil) = %v", got)
	}
}

func TestRoleStrings(t *testing.T) {
	roles := []LineRole{
		RoleBGPHeader, RolePeerASN, RolePeerGroupMembership, RoleGroupDecl,
		RolePolicyAttach, RoleNetworkStmt, RoleRedistribute, RolePolicyNode,
		RolePolicyMatch, RolePolicyApply, RolePrefixListEntry, RoleStaticRoute,
		RolePBRPolicy, RolePBRRule, RolePBRRuleBody, RoleInterface,
	}
	seen := map[string]bool{}
	for _, r := range roles {
		s := r.String()
		if s == "unknown" || seen[s] {
			t.Errorf("role %d has bad/duplicate name %q", r, s)
		}
		seen[s] = true
	}
	if RoleUnknown.String() != "unknown" {
		t.Error("RoleUnknown should stringify to unknown")
	}
}

func TestClassifyGroupDecl(t *testing.T) {
	// Explicit declaration (not via attach/membership).
	f := netcfg.MustParse(netcfg.NewConfig("X", "bgp 1\n peer-group G external\n"))
	if got := Classify(f, 2); got != RoleGroupDecl {
		t.Errorf("Classify(peer-group decl) = %v", got)
	}
}
