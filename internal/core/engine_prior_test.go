package core_test

import (
	"testing"

	"acr/internal/core"
	"acr/internal/scenario"
)

// TestStaticPriorReducesSearch is the issue's acceptance criterion: on the
// Figure 2 incident, a repair run with the static-analysis prior must use
// strictly fewer candidate evaluations than the ablated run, and still
// find the same feasible repair.
func TestStaticPriorReducesSearch(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)

	withPrior := core.Repair(p, core.Options{Strategy: core.BruteForce, Seed: 1})
	without := core.Repair(p, core.Options{Strategy: core.BruteForce, Seed: 1, NoStaticPrior: true})

	checkRepaired(t, p, withPrior)
	checkRepaired(t, p, without)

	if withPrior.CandidatesValidated >= without.CandidatesValidated {
		t.Errorf("prior did not narrow the search: %d candidates with prior, %d without",
			withPrior.CandidatesValidated, without.CandidatesValidated)
	}
	if withPrior.StaticDiagnostics != 2 {
		t.Errorf("StaticDiagnostics = %d, want 2 (the shadowed entries on A and C)", withPrior.StaticDiagnostics)
	}
	if withPrior.TemplatesPrunedStatic == 0 {
		t.Error("TemplatesPrunedStatic = 0: pruning never engaged at the diagnosed lines")
	}
	if without.StaticDiagnostics != 0 || without.TemplatesPrunedStatic != 0 {
		t.Errorf("ablated run still carries static counters: %d diagnostics, %d pruned",
			without.StaticDiagnostics, without.TemplatesPrunedStatic)
	}
	t.Logf("candidates validated: %d with prior vs %d without (%.0f%% saved)",
		withPrior.CandidatesValidated, without.CandidatesValidated,
		100*(1-float64(withPrior.CandidatesValidated)/float64(without.CandidatesValidated)))
}

// TestStaticPriorDeterministic: the prior must not perturb run-to-run
// determinism (the analyzers sort their output; ApplyPrior re-sorts the
// ranking with the same tie-breaks).
func TestStaticPriorDeterministic(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	a := core.Repair(p, core.Options{Strategy: core.Evolutionary, Seed: 42})
	b := core.Repair(p, core.Options{Strategy: core.Evolutionary, Seed: 42})
	if a.Iterations != b.Iterations || a.CandidatesValidated != b.CandidatesValidated ||
		a.TemplatesPrunedStatic != b.TemplatesPrunedStatic {
		t.Errorf("nondeterministic with prior: (%d,%d,%d) vs (%d,%d,%d)",
			a.Iterations, a.CandidatesValidated, a.TemplatesPrunedStatic,
			b.Iterations, b.CandidatesValidated, b.TemplatesPrunedStatic)
	}
}
