package core_test

import (
	"strings"
	"testing"

	"acr/internal/core"
	"acr/internal/scenario"
)

// TestDeltaAblationIdenticalFigure2 pins the tentpole contract at engine
// scope: a delta+batch run and a run with both disabled decide
// byte-identically (same Canonical()), while the delta run does strictly
// less device·prefix work.
func TestDeltaAblationIdenticalFigure2(t *testing.T) {
	p := problemOf(scenario.Figure2())
	withDelta := core.Repair(p, core.Options{Strategy: core.BruteForce})
	without := core.Repair(p, core.Options{Strategy: core.BruteForce, NoDelta: true, NoBatch: true})
	if withDelta.Canonical() != without.Canonical() {
		t.Fatalf("Canonical() differs between delta and -no-delta runs:\n--- delta:\n%s\n--- no-delta:\n%s",
			withDelta.Canonical(), without.Canonical())
	}
	if withDelta.DeltaReused == 0 {
		t.Error("delta run never reused a base outcome; the ablation is vacuous")
	}
	if without.DeltaReused != 0 || without.DeltaResimulated != 0 {
		t.Errorf("-no-delta run reports delta counters: reused=%d resimulated=%d",
			without.DeltaReused, without.DeltaResimulated)
	}
	if withDelta.SimActivations >= without.SimActivations {
		t.Errorf("delta did not reduce activations: %d with vs %d without",
			withDelta.SimActivations, without.SimActivations)
	}
}

// TestDeltaCountersExcludedFromCanonical pins the exclusion contract:
// DeltaReused/DeltaResimulated/SimActivations are work counters, so
// mutating them must not move a byte of Canonical() — otherwise the
// delta-vs-no-delta byte-identity ablation could never hold.
func TestDeltaCountersExcludedFromCanonical(t *testing.T) {
	p := problemOf(scenario.Figure2())
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	before := res.Canonical()
	res.DeltaReused += 1000
	res.DeltaResimulated += 1000
	res.SimActivations += 1000
	if res.Canonical() != before {
		t.Error("delta work counters leak into Canonical()")
	}
	// They do surface in the human-facing summary.
	if !strings.Contains(res.Summary(), "delta:") {
		t.Errorf("Summary() missing the delta line:\n%s", res.Summary())
	}
}

// TestDeltaDigestSeparatesSessions pins the resume-compatibility rule:
// NoDelta moves the checkpointed work counters, so it is part of
// SearchDigest (like NoImpact); NoBatch and DeltaDifferential move
// nothing and are excluded.
func TestDeltaDigestSeparatesSessions(t *testing.T) {
	base := core.Options{}.SearchDigest()
	if d := (core.Options{NoDelta: true}).SearchDigest(); d == base {
		t.Error("NoDelta does not change SearchDigest; delta and -no-delta sessions would mix")
	}
	if d := (core.Options{NoBatch: true}).SearchDigest(); d != base {
		t.Error("NoBatch changes SearchDigest; the parse memo is a pure cache and must not split sessions")
	}
	if d := (core.Options{DeltaDifferential: true}).SearchDigest(); d != base {
		t.Error("DeltaDifferential changes SearchDigest; observational replay must not split sessions")
	}
}

// TestDeltaDifferentialFigure2 runs the engine with the per-prefix
// differential on: every delta-simulated prefix is replayed against a
// cold simulation inside the check, and any divergence terminates the
// run. A clean pass on the worked incident is the smoke version of the
// corpus-wide delta-soundness CI job.
func TestDeltaDifferentialFigure2(t *testing.T) {
	p := problemOf(scenario.Figure2())
	res := core.Repair(p, core.Options{Strategy: core.BruteForce, DeltaDifferential: true})
	if res.Termination == "delta-divergence" {
		t.Fatalf("delta simulation diverged from full simulation:\n%s", res.Summary())
	}
	want := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if res.Canonical() != want.Canonical() {
		t.Error("DeltaDifferential changed the result; replay must be observational")
	}
}
