package core

import (
	"fmt"
	"strings"

	"acr/internal/errclass"
	"acr/internal/netcfg"
	"acr/internal/rolesim"
)

// UniversalTemplates is the §6 "universal change operators" exploration: a
// purely syntactic operator set with no knowledge of the Table 1 incident
// history. It can, in principle, address error classes that have never
// occurred — at the cost the paper predicts in §4.2: raw copying ignores
// parameter semantics ("directly copying existing configuration lines may
// lead to conflicts ... or inconsistency"), so more candidates are junk
// and some incidents stay unrepaired. The ablation bench quantifies this
// against the history-derived templates.
func UniversalTemplates() []Template {
	return []Template{
		DeleteSuspiciousLine{},
		CopyFromRolePeer{},
	}
}

// DeleteSuspiciousLine removes any single line covered by a failing test —
// the universal "this statement is wrong, drop it" operator.
type DeleteSuspiciousLine struct{}

// Name implements Template.
func (DeleteSuspiciousLine) Name() string { return "universal-delete-line" }

// ErrorClass implements Template.
func (DeleteSuspiciousLine) ErrorClass() errclass.Class { return errclass.UniversalSyntactic }

// Generate implements Template.
func (DeleteSuspiciousLine) Generate(ctx *Context, line netcfg.LineRef) []Update {
	if !ctx.CoversLine(line) {
		return nil
	}
	cfg := ctx.Configs[line.Device]
	if cfg == nil || line.Line < 1 || line.Line > cfg.NumLines() {
		return nil
	}
	return []Update{{
		Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{netcfg.DeleteLine{At: line.Line}}}},
		Desc:  describeEdits("universal-delete-line", line, strings.TrimSpace(cfg.Line(line.Line))),
	}}
}

// CopyFromRolePeer inserts, verbatim, lines that a quorum of same-role
// devices carry but this device lacks — the plastic surgery hypothesis
// applied naively. The copied text keeps the donor's parameters (peer
// addresses, prefixes), which is exactly the conflict/inconsistency
// hazard §4.2 warns about; validation weeds out the resulting breakage.
type CopyFromRolePeer struct{}

// Name implements Template.
func (CopyFromRolePeer) Name() string { return "universal-copy-from-role-peer" }

// ErrorClass implements Template.
func (CopyFromRolePeer) ErrorClass() errclass.Class { return errclass.UniversalPlasticSurgery }

// copyCap bounds candidates per device per iteration.
const copyCap = 4

// Generate implements Template. It anchors once per device (at any
// suspicious line on it); duplicate candidates from multiple anchors are
// deduplicated by the engine's edit signature.
func (CopyFromRolePeer) Generate(ctx *Context, line netcfg.LineRef) []Update {
	f := ctx.Files[line.Device]
	cfg := ctx.Configs[line.Device]
	if f == nil || cfg == nil {
		return nil
	}
	missing := rolesim.MissingShapes(ctx.Topo, ctx.Configs, line.Device, 0.75)
	var out []Update
	for _, m := range missing {
		if len(out) == copyCap {
			break
		}
		at := cfg.NumLines() + 1
		if strings.HasPrefix(m.Example, " ") {
			// A block-body line: the only block this operator can place it
			// into blindly is the bgp block.
			if f.BGP == nil {
				continue
			}
			at = f.BGP.End + 1
		}
		out = append(out, Update{
			Edits: []netcfg.EditSet{{Device: line.Device, Edits: []netcfg.Edit{
				netcfg.InsertBefore{At: at, Text: m.Example},
			}}},
			Desc: describeEdits("universal-copy-from-role-peer",
				netcfg.LineRef{Device: line.Device, Line: at},
				fmt.Sprintf("%q from %s (%.0f%% of role peers)", strings.TrimSpace(m.Example), m.FromDevice, 100*m.PeerShare)),
		})
	}
	return out
}
