package core_test

import (
	"testing"
	"time"

	"acr/internal/chaos"
	"acr/internal/core"
	"acr/internal/incidents"
	"acr/internal/scenario"
)

// TestParallelDeterminismFigure2 is the tentpole invariant: the validation
// worker count must not change the repair. -p 1 runs the exact pre-parallel
// serial loop; -p 4 and -p 8 dispatch to clones and merge in proposal
// order; all must render byte-identical Canonical() output (which includes
// every counter and the cache hit/miss totals, and deliberately excludes
// ParallelWorkers).
func TestParallelDeterminismFigure2(t *testing.T) {
	for _, strat := range []struct {
		name string
		opts core.Options
	}{
		{"bruteforce", core.Options{Strategy: core.BruteForce}},
		{"evolutionary", core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25}},
	} {
		s := scenario.Figure2()
		p := problemOf(s)
		serial := strat.opts
		serial.Parallelism = 1
		want := core.Repair(p, serial)
		if !want.Feasible {
			t.Fatalf("%s: serial run infeasible: %s", strat.name, want.Summary())
		}
		if want.ParallelWorkers != 1 {
			t.Errorf("%s: serial ParallelWorkers = %d, want 1", strat.name, want.ParallelWorkers)
		}
		for _, workers := range []int{4, 8} {
			opts := strat.opts
			opts.Parallelism = workers
			res := core.Repair(p, opts)
			if res.ParallelWorkers != workers {
				t.Errorf("%s -p %d: ParallelWorkers = %d", strat.name, workers, res.ParallelWorkers)
			}
			if got := res.Canonical(); got != want.Canonical() {
				t.Errorf("%s: -p %d diverges from -p 1\n--- p1 ---\n%s\n--- p%d ---\n%s",
					strat.name, workers, want.Canonical(), workers, got)
			}
			if res.CandidatesValidated != res.CacheHits+res.CacheMisses {
				t.Errorf("%s -p %d: validated=%d but hits+misses=%d — every candidate must resolve through the cache when it is on",
					strat.name, workers, res.CandidatesValidated, res.CacheHits+res.CacheMisses)
			}
		}
		// The cache setting is part of the canonical counters, but feasibility
		// and the repaired configs must not depend on it.
		nocache := strat.opts
		nocache.Parallelism = 8
		nocache.NoCache = true
		res := core.Repair(p, nocache)
		if !res.Feasible {
			t.Errorf("%s: -no-cache -p 8 infeasible: %s", strat.name, res.Summary())
		}
		if res.CacheHits != 0 || res.CacheMisses != 0 {
			t.Errorf("%s: NoCache run counted hits=%d misses=%d", strat.name, res.CacheHits, res.CacheMisses)
		}
		for d, cfg := range res.FinalConfigs {
			if cfg.Text() != want.FinalConfigs[d].Text() {
				t.Errorf("%s: NoCache changed the repaired config of %s", strat.name, d)
			}
		}
	}
}

// TestParallelDeterminismCorpus repeats the -p 1 vs -p 8 equality over a
// corpus slice: different misconfiguration classes exercise different
// templates, widening rounds, and best-effort paths. It also checks that
// the slice exercises the cache at all — at least one incident must answer
// a duplicate proposal from the cache rather than re-simulating.
func TestParallelDeterminismCorpus(t *testing.T) {
	incs, err := incidents.GenerateCorpus(incidents.CorpusOptions{Size: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tested, hits := 0, 0
	for _, inc := range incs {
		p := core.Problem{Topo: inc.Scenario.Topo, Configs: inc.Scenario.Configs, Intents: inc.Scenario.Intents}
		opts := core.Options{Seed: 11, MaxIterations: 20, Parallelism: 1}
		serial := core.Repair(p, opts)
		if serial.BaseFailing == 0 {
			continue // injection invisible to the intent suite
		}
		tested++
		hits += serial.CacheHits
		opts.Parallelism = 8
		par := core.Repair(p, opts)
		if par.Canonical() != serial.Canonical() {
			t.Errorf("%s: -p 8 diverges from -p 1\n--- p1 ---\n%s\n--- p8 ---\n%s",
				inc.ID, serial.Canonical(), par.Canonical())
		}
	}
	if tested == 0 {
		t.Fatal("no visible incidents in corpus slice")
	}
	if hits == 0 {
		t.Error("corpus slice produced zero cache hits — duplicate proposals should recur across iterations")
	}
}

// TestRetryBackoffNotAfterFinalAttempt pins the backoff fix: when every
// attempt fails transiently, the engine sleeps between attempts but not
// after the last one. With RetryBackoff=250ms and MaxValidationRetries=1,
// each of the (at most 4) exhausted candidates legitimately sleeps 250ms
// once; the old bug slept the doubled backoff (500ms) more per candidate
// after classifying the final failure — ~3s total against ~1s — so the 2s
// bound discriminates firmly without being timing-sensitive.
func TestRetryBackoffNotAfterFinalAttempt(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	opts := core.Options{
		Strategy:             core.BruteForce,
		MaxIterations:        1,
		CandidateCap:         4,
		MaxValidationRetries: 1,
		RetryBackoff:         250 * time.Millisecond,
	}
	opts = chaos.New(chaos.Plan{TransientEveryN: 1}).Wire(opts)
	start := time.Now()
	res := core.Repair(p, opts)
	wall := time.Since(start)
	if res.Feasible {
		t.Fatalf("all-transient run should be infeasible: %s", res.Summary())
	}
	if res.ValidationRetries < 3 {
		t.Fatalf("ValidationRetries = %d, want >= 3 (injector barely engaged; bound below meaningless)",
			res.ValidationRetries)
	}
	if wall > 2*time.Second {
		t.Errorf("wall clock %v exceeds 2s — backoff is sleeping after the final attempt", wall)
	}
}

// TestRetryBackoffFullJitter pins the jitter satellite alongside the
// no-sleep-after-final-attempt fix above. With TransientEveryN=1,
// MaxValidationRetries=2, and RetryBackoff=500ms, the pre-jitter
// deterministic schedule sleeps 500ms+1000ms per exhausted candidate —
// 6s across the 4 capped candidates. Full jitter draws each sleep
// uniformly over [0, window], so the expected total is 3s and the
// probability of exceeding 5.5s is ~4σ out — the bound discriminates the
// old fixed schedule (>= 6s) firmly without being timing-sensitive. The
// run must also stay correct: retries still counted, run still completes.
func TestRetryBackoffFullJitter(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	opts := core.Options{
		Strategy:             core.BruteForce,
		MaxIterations:        1,
		CandidateCap:         4,
		MaxValidationRetries: 2,
		RetryBackoff:         500 * time.Millisecond,
	}
	opts = chaos.New(chaos.Plan{TransientEveryN: 1}).Wire(opts)
	start := time.Now()
	res := core.Repair(p, opts)
	wall := time.Since(start)
	if res.Feasible {
		t.Fatalf("all-transient run should be infeasible: %s", res.Summary())
	}
	if res.ValidationRetries < 3 {
		t.Fatalf("ValidationRetries = %d, want >= 3 (injector barely engaged; bound below meaningless)",
			res.ValidationRetries)
	}
	if wall > 5500*time.Millisecond {
		t.Errorf("wall clock %v — backoff is sleeping the full deterministic schedule (>= 6s); jitter is not applied", wall)
	}
}
