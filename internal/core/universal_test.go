package core_test

import (
	"strings"
	"testing"

	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/scenario"
)

func TestUniversalTemplatesRepairFigure2(t *testing.T) {
	// The purely syntactic operators can fix the Figure 2 incident by
	// deleting override machinery (no value solving needed there).
	s := scenario.Figure2()
	p := problemOf(s)
	res := core.Repair(p, core.Options{
		Strategy:  core.BruteForce,
		Templates: core.UniversalTemplates(),
	})
	if !res.Feasible {
		t.Fatalf("universal operators infeasible on figure2: %s", res.Summary())
	}
	checkRepaired(t, p, res)
	if !strings.Contains(strings.Join(res.Applied, " "), "universal-") {
		t.Errorf("applied = %v, want universal operator", res.Applied)
	}
}

func TestUniversalCopyRepairsMissingRedistribution(t *testing.T) {
	// With every stub using static origination, the missing
	// `redistribute static` is a role-consensus line: the naive copy
	// operator reconstructs it (this copy happens to be parameter-free,
	// so it is one of the cases where plastic surgery works verbatim).
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{StaticOriginEvery: 1})
	f := netcfg.MustParse(s.Configs["pop1"])
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: f.BGP.Redistribute.Line}}}.Apply(s.Configs["pop1"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop1"] = next
	p := problemOf(s)
	res := core.Repair(p, core.Options{
		Strategy:  core.BruteForce,
		Templates: core.UniversalTemplates(),
	})
	if !res.Feasible {
		t.Fatalf("universal operators infeasible: %s", res.Summary())
	}
	found := false
	for _, a := range res.Applied {
		if strings.Contains(a, "universal-copy-from-role-peer") {
			found = true
		}
	}
	if !found {
		t.Errorf("applied = %v, want the copy operator", res.Applied)
	}
	checkRepaired(t, p, res)
}

func TestUniversalFailsWhereValueSolvingIsNeeded(t *testing.T) {
	// A wrong AS number cannot be fixed by deleting lines or copying
	// peers' lines verbatim (the peers' stanzas carry THEIR addresses):
	// the §4.2 conflict hazard in action. The Table 1 library (with its
	// solved-value template) succeeds where the universal set fails.
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	f := netcfg.MustParse(s.Configs["pop0"])
	peer := f.BGP.Peers[0]
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At: peer.ASNLine, Text: " peer " + peer.Addr.String() + " as-number 63999",
	}}}.Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop0"] = next
	p := problemOf(s)
	uni := core.Repair(p, core.Options{
		Strategy:  core.BruteForce,
		Templates: core.UniversalTemplates(),
		// Keep the run bounded; the point is that it cannot succeed.
		MaxIterations: 8,
	})
	if uni.Feasible {
		t.Log("universal operators unexpectedly repaired the wrong-ASN case:", uni.Applied)
	}
	full := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !full.Feasible {
		t.Fatalf("Table 1 templates must repair wrong-ASN: %s", full.Summary())
	}
	if uni.Feasible && !full.Feasible {
		t.Error("inverted outcome")
	}
}
