package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"acr/internal/journal"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
)

// This file is the bridge between the engine and the write-ahead journal
// (internal/journal): session identity digests, conversions between the
// engine's in-memory state and journal records, and the restore path that
// rebuilds a population from a checkpoint.

// Digest fingerprints the repair problem: topology, configurations, and
// intents. A journal header carries it so resume can refuse to continue a
// session against a different case.
func (p Problem) Digest() string {
	h := sha256.New()
	if p.Topo != nil {
		fmt.Fprintf(h, "topo %s\n", p.Topo.Name)
		for _, nd := range p.Topo.Nodes() {
			fmt.Fprintf(h, "node %s %d %d %s %v\n", nd.Name, nd.Kind, nd.ASN, nd.RouterID, nd.Originates)
		}
		for _, l := range p.Topo.Links {
			fmt.Fprintf(h, "link %s %s\n", l.A.Node, l.B.Node)
		}
	}
	devices := make([]string, 0, len(p.Configs))
	for d := range p.Configs {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, d := range devices {
		fmt.Fprintf(h, "config %s\n", d)
		io.WriteString(h, p.Configs[d].Text())
	}
	for _, in := range p.Intents {
		fmt.Fprintf(h, "intent %+v\n", in)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SearchDigest fingerprints every option that steers the search. Options
// that only bound or observe the run (deadlines, journaling, chaos) are
// excluded: resuming under a different wall-clock budget is legitimate,
// resuming under a different seed or template library is not.
func (o Options) SearchDigest() string {
	o = o.withDefaults()
	h := sha256.New()
	// Parallelism is deliberately absent: -p 1 and -p N runs are
	// byte-identical, so resuming under a different worker count is
	// legitimate. NoCache is present: it changes the hit/miss counters in
	// Canonical, so cached and uncached sessions must not mix.
	// NoImpact is present for the same reason: the impact and
	// legacy-dependency paths agree on every fitness (enforced by the
	// differential mode) but not on the work counters. NoDelta follows the
	// NoImpact precedent: the delta and cold simulation paths agree on
	// every outcome, but the checkpointed work counters differ, so delta
	// and -no-delta sessions must not mix. NoBatch and the differential
	// modes are absent: the parse memo is a pure cache and differential
	// replay is purely observational — neither moves any counter.
	// Store is deliberately absent, like Parallelism: the persistent
	// evaluation store only substitutes disk reads for simulations without
	// touching anything in Canonical, so a session may resume on a machine
	// with a different -cache-dir, budget, or no store at all.
	fmt.Fprintf(h, "formula=%s iters=%d minsusp=%g topk=%d popcap=%d candcap=%d sample=%d strategy=%d seed=%d full=%v noprior=%v nocache=%v noimpact=%v nodelta=%v\n",
		o.Formula.Name, o.MaxIterations, o.MinSusp, o.TopKLines, o.PopulationCap,
		o.CandidateCap, o.SampleSize, o.Strategy, o.Seed, o.FullValidation, o.NoStaticPrior, o.NoCache, o.NoImpact, o.NoDelta)
	for _, t := range o.Templates {
		// Registry-resolved templates fold their full descriptor digest —
		// name, description, error class, use-case, version, provenance —
		// into the search fingerprint, so a resume (or a fleet dedup hit)
		// against a registry whose metadata changed is refused even when the
		// template names still match. Bare templates hash by name only.
		if dt, ok := t.(DescribedTemplate); ok {
			fmt.Fprintf(h, "template=%s %s\n", t.Name(), dt.DescriptorDigest())
		} else {
			fmt.Fprintf(h, "template=%s\n", t.Name())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SessionHeader builds the journal header identifying a run of p under o.
func SessionHeader(name string, p Problem, o Options) journal.Header {
	o = o.withDefaults()
	return journal.Header{
		Case:          name,
		CaseDigest:    p.Digest(),
		OptionsDigest: o.SearchDigest(),
		Seed:          o.Seed,
	}
}

// --- engine state <-> journal records --------------------------------------

func scoresToJournal(scores []sbfl.Score) []journal.Score {
	if len(scores) == 0 {
		return nil
	}
	out := make([]journal.Score, len(scores))
	for i, s := range scores {
		out[i] = journal.Score{Device: s.Line.Device, Line: s.Line.Line,
			Susp: s.Susp, Failed: s.Failed, Passed: s.Passed, Prior: s.Prior}
	}
	return out
}

func scoresFromJournal(scores []journal.Score) []sbfl.Score {
	if len(scores) == 0 {
		return nil
	}
	out := make([]sbfl.Score, len(scores))
	for i, s := range scores {
		out[i] = sbfl.Score{Line: netcfg.LineRef{Device: s.Device, Line: s.Line},
			Susp: s.Susp, Failed: s.Failed, Passed: s.Passed, Prior: s.Prior}
	}
	return out
}

func logToJournal(l IterationLog) journal.IterationLog {
	return journal.IterationLog{Iteration: l.Iteration, Generated: l.Generated,
		Validated: l.Validated, Kept: l.Kept, BestFitness: l.BestFitness,
		Top: scoresToJournal(l.TopSuspicious)}
}

func logFromJournal(l journal.IterationLog) IterationLog {
	return IterationLog{Iteration: l.Iteration, Generated: l.Generated,
		Validated: l.Validated, Kept: l.Kept, BestFitness: l.BestFitness,
		TopSuspicious: scoresFromJournal(l.Top)}
}

// configsToLines snapshots a configuration version as raw line slices —
// the representation that restores byte-exactly (Text round trips drop
// trailing blank lines).
func configsToLines(configs map[string]*netcfg.Config) map[string][]string {
	out := make(map[string][]string, len(configs))
	for d, c := range configs { //acrvet:ordered
		out[d] = c.Lines()
	}
	return out
}

func configsFromLines(lines map[string][]string) map[string]*netcfg.Config {
	out := make(map[string]*netcfg.Config, len(lines))
	for d, ls := range lines { //acrvet:ordered
		out[d] = netcfg.FromLines(d, ls)
	}
	return out
}

// loopState is the restart-relevant loop-control state at an iteration
// boundary (the top of iteration iter+1).
type loopState struct {
	iter        int
	pop         []*candidate
	prevFitness int
	widen       int
	bestEver    int
	stagnant    int
}

// buildCheckpoint snapshots the run for the journal.
func buildCheckpoint(res *Result, best *bestEffort, st loopState) journal.Checkpoint {
	cp := journal.Checkpoint{
		Iteration:         st.iter,
		PrevFitness:       st.prevFitness,
		Widen:             st.widen,
		BestEver:          st.bestEver,
		Stagnant:          st.stagnant,
		BaseFailing:       res.BaseFailing,
		StaticDiagnostics: res.StaticDiagnostics,
		PriorSeededLines:  res.PriorSeededLines,
		Counters: journal.Counters{
			CandidatesValidated:   res.CandidatesValidated,
			PrefixSimulations:     res.PrefixSimulations,
			IntentChecks:          res.IntentChecks,
			TemplatesPrunedStatic: res.TemplatesPrunedStatic,
			CandidatesPanicked:    res.CandidatesPanicked,
			CandidatesTimedOut:    res.CandidatesTimedOut,
			ValidationRetries:     res.ValidationRetries,
			CacheHits:             res.CacheHits,
			CacheMisses:           res.CacheMisses,
			StaticallyRefuted:     res.StaticallyRefuted,
			ImpactScoped:          res.ImpactScoped,
			ImpactBroad:           res.ImpactBroad,
			LeafDerivations:       res.LeafDerivations,
			DeltaReused:           res.DeltaReused,
			DeltaResimulated:      res.DeltaResimulated,
			SimActivations:        res.SimActivations,
		},
	}
	for _, m := range st.pop {
		cp.Population = append(cp.Population, journal.Member{
			Configs: configsToLines(m.configs),
			Descs:   m.descs,
			Fitness: m.fitness,
		})
	}
	if best.fitness >= 0 {
		best.materialize()
		cp.Best = &journal.BestEffort{
			Fitness: best.fitness,
			Configs: configsToLines(best.configs),
			Applied: best.applied,
		}
	}
	for _, l := range res.Logs {
		cp.Logs = append(cp.Logs, logToJournal(l))
	}
	for _, e := range res.Errors {
		ev := journal.ErrorEvent{Kind: string(e.Kind), Op: e.Op, Candidate: e.Candidate}
		if e.Err != nil {
			ev.Message = e.Err.Error()
		}
		cp.Errors = append(cp.Errors, ev)
	}
	return cp
}

// restoreCheckpoint rebuilds the run from a checkpoint: counters and logs
// into res, the best-effort tracker, and the population (each member is
// re-verified — the only validation work a resume re-pays, bounded by
// PopulationCap). A member whose re-verification fails or disagrees with
// its journaled fitness is dropped (quarantine semantics); restore reports
// ok=false when no member survives, and the caller falls back to a fresh
// run.
func restoreCheckpoint(res *Result, best *bestEffort, p Problem, opts Options, cp *journal.Checkpoint) (loopState, bool) {
	res.BaseFailing = cp.BaseFailing
	res.StaticDiagnostics = cp.StaticDiagnostics
	res.PriorSeededLines = cp.PriorSeededLines
	res.Iterations = cp.Iteration
	res.CandidatesValidated = cp.Counters.CandidatesValidated
	res.PrefixSimulations = cp.Counters.PrefixSimulations
	res.IntentChecks = cp.Counters.IntentChecks
	res.TemplatesPrunedStatic = cp.Counters.TemplatesPrunedStatic
	res.CandidatesPanicked = cp.Counters.CandidatesPanicked
	res.CandidatesTimedOut = cp.Counters.CandidatesTimedOut
	res.ValidationRetries = cp.Counters.ValidationRetries
	res.CacheHits = cp.Counters.CacheHits
	res.CacheMisses = cp.Counters.CacheMisses
	res.StaticallyRefuted = cp.Counters.StaticallyRefuted
	res.ImpactScoped = cp.Counters.ImpactScoped
	res.ImpactBroad = cp.Counters.ImpactBroad
	res.LeafDerivations = cp.Counters.LeafDerivations
	res.DeltaReused = cp.Counters.DeltaReused
	res.DeltaResimulated = cp.Counters.DeltaResimulated
	res.SimActivations = cp.Counters.SimActivations
	res.Logs = nil
	for _, l := range cp.Logs {
		res.Logs = append(res.Logs, logFromJournal(l))
	}
	res.Errors = nil
	for i := range cp.Errors {
		e := cp.Errors[i]
		var err error
		if e.Message != "" {
			err = fmt.Errorf("%s", e.Message)
		}
		res.recordError(&RepairError{Kind: ErrorKind(e.Kind), Op: e.Op, Candidate: e.Candidate, Err: err})
	}
	if cp.Best != nil {
		best.fitness = cp.Best.Fitness
		best.configs = configsFromLines(cp.Best.Configs)
		best.applied = cp.Best.Applied
	}
	st := loopState{
		iter:        cp.Iteration,
		prevFitness: cp.PrevFitness,
		widen:       cp.Widen,
		bestEver:    cp.BestEver,
		stagnant:    cp.Stagnant,
	}
	for _, m := range cp.Population {
		c := preserve(res, p, configsFromLines(m.Configs), m.Descs, opts)
		if c == nil {
			continue
		}
		if c.fitness != m.Fitness {
			res.recordError(&RepairError{Kind: KindJournal, Op: "restore",
				Candidate: strings.Join(m.Descs, " + "),
				Err:       fmt.Errorf("re-verified fitness %d disagrees with journaled %d", c.fitness, m.Fitness)})
			continue
		}
		st.pop = append(st.pop, c)
	}
	return st, len(st.pop) > 0
}

// journalSink funnels the engine's event emission. A nil sink (journaling
// off) is a no-op; an append error records a KindJournal RepairError and
// disables further emission rather than failing the run — durability is
// best-effort, the search result is not. Panics from the writer's chaos
// hook are NOT absorbed: a simulated crash must unwind the engine like a
// real one.
type journalSink struct {
	w        *journal.Writer
	res      *Result
	every    int // checkpoint cadence in iterations
	disabled bool
}

func newJournalSink(w *journal.Writer, res *Result, every int) *journalSink {
	if w == nil {
		return nil
	}
	if every <= 0 {
		every = 1
	}
	return &journalSink{w: w, res: res, every: every}
}

func (j *journalSink) emit(op string, err error) {
	if err != nil {
		j.disabled = true
		j.res.recordError(&RepairError{Kind: KindJournal, Op: op, Err: err})
	}
}

func (j *journalSink) candidate(iter int, desc string, fitness int, digest string, refuted bool) {
	if j == nil || j.disabled {
		return
	}
	j.emit("journal", j.w.AppendCandidate(journal.Candidate{Iteration: iter, Desc: desc, Fitness: fitness, Digest: digest, Refuted: refuted}))
}

func (j *journalSink) iteration(l IterationLog) {
	if j == nil || j.disabled {
		return
	}
	jl := logToJournal(l)
	j.emit("journal", j.w.AppendIteration(journal.Iteration{Iteration: jl.Iteration,
		Generated: jl.Generated, Validated: jl.Validated, Kept: jl.Kept,
		BestFitness: jl.BestFitness, Top: jl.Top}))
}

// checkpoint journals a restart point when the cadence is due. The base
// snapshot (iteration 0) is always written: it is the minimum viable
// resume point.
func (j *journalSink) checkpoint(res *Result, best *bestEffort, st loopState) {
	if j == nil || j.disabled {
		return
	}
	if st.iter != 0 && st.iter%j.every != 0 {
		return
	}
	j.emit("checkpoint", j.w.AppendCheckpoint(buildCheckpoint(res, best, st)))
}

func (j *journalSink) terminal(term string, feasible bool) {
	if j == nil || j.disabled {
		return
	}
	j.emit("terminal", j.w.AppendTerminal(journal.Terminal{Termination: term, Feasible: feasible}))
}
