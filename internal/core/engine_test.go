package core_test

import (
	"net/netip"
	"strings"
	"testing"

	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func problemOf(s *scenario.Scenario) core.Problem {
	return core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
}

func checkRepaired(t *testing.T, p core.Problem, res *core.Result) {
	t.Helper()
	if !res.Feasible {
		t.Fatalf("repair infeasible: %s", res.Summary())
	}
	files := map[string]*netcfg.File{}
	for d, c := range res.FinalConfigs {
		f, err := netcfg.Parse(c)
		if err != nil {
			t.Fatalf("repaired config %s does not parse: %v", d, err)
		}
		files[d] = f
	}
	n := bgp.Compile(p.Topo, files)
	out := bgp.Simulate(n, bgp.Options{})
	rep := verify.Verify(n, out, p.Intents)
	if rep.NumFailed() != 0 {
		t.Fatalf("repaired network still failing:\n%s", rep.Summary())
	}
	if !out.Converged() {
		t.Fatalf("repaired network still flapping: %v", out.FlappingPrefixes())
	}
}

// TestRepairFigure2Engine runs the full engine on the worked incident.
// The engine repairs it within two iterations; the applied update
// neutralizes override machinery on the faulty routers. (The engine may
// find a repair smaller than the paper's two-sided fix: in this model,
// disabling C's override alone already removes the preference cycle —
// see EXPERIMENTS.md.)
func TestRepairFigure2Engine(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Summary())
	}
	if res.Iterations > 2 {
		t.Errorf("iterations = %d, want <= 2 (the paper repaired it in 2)", res.Iterations)
	}
	if res.BaseFailing != 1 {
		t.Errorf("base failing = %d, want 1", res.BaseFailing)
	}
	touchesFaulty := false
	for _, a := range res.Applied {
		if strings.Contains(a, "A:") || strings.Contains(a, "C:") {
			touchesFaulty = true
		}
	}
	if !touchesFaulty {
		t.Errorf("applied = %v, want edits on the faulty routers A/C", res.Applied)
	}
	checkRepaired(t, p, res)
}

// TestRepairFigure2FlagshipTemplate restricts the engine to the paper's
// flagship template (symbolize-prefix-list, §5 step 2) and checks the
// solved values: whichever faulty router is repaired, the constraints are
// P: 10.70/16 ∈ var ∧ 20.0/16 ∈ var and F: 10.0/16 ∈ var, and the solved
// membership is exactly {10.70/16, 20.0/16} — the paper's assignment.
func TestRepairFigure2FlagshipTemplate(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	res := core.Repair(p, core.Options{
		Strategy:  core.BruteForce,
		Templates: []core.Template{core.SymbolizePrefixList{}},
	})
	if !res.Feasible {
		t.Fatalf("infeasible with flagship template: %s", res.Summary())
	}
	last := res.Applied[len(res.Applied)-1]
	if !strings.Contains(last, "symbolize-prefix-list[default_all]") {
		t.Errorf("final application = %q, want symbolize-prefix-list on default_all", last)
	}
	for _, want := range []string{"10.70.0.0/16 ∈ var", "20.0.0.0/16 ∈ var", "¬(10.0.0.0/16 ∈ var)"} {
		if !strings.Contains(last, want) {
			t.Errorf("constraints %q missing %q", last, want)
		}
	}
	// The repaired device's default_all is exactly the paper's solution.
	repairedDevice := "C"
	if strings.Contains(last, "@ A:") {
		repairedDevice = "A"
	}
	f := netcfg.MustParse(res.FinalConfigs[repairedDevice])
	entries := f.PrefixListEntries("default_all")
	if len(entries) != 2 || entries[0].Prefix != scenario.PrefixPoPA || entries[1].Prefix != scenario.PrefixDCNS {
		t.Errorf("%s default_all = %+v, want permits for exactly {10.70/16, 20.0/16}", repairedDevice, entries)
	}
	checkRepaired(t, p, res)
}

func TestRepairFigure2Evolutionary(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.Evolutionary, Seed: 7, MaxIterations: 25})
	if !res.Feasible {
		t.Fatalf("evolutionary strategy failed within 25 iterations: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestRepairAlreadyCorrect(t *testing.T) {
	s := scenario.Figure2Correct()
	res := core.Repair(problemOf(s), core.Options{})
	if !res.Feasible || res.Iterations != 0 || len(res.Applied) != 0 {
		t.Fatalf("correct network should be trivially feasible: %s", res.Summary())
	}
}

func TestRepairWrongASN(t *testing.T) {
	// Table 1 class: "Override to wrong AS number".
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	f := netcfg.MustParse(s.Configs["pop0"])
	asnLine := f.BGP.Peers[0].ASNLine
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{
		At:   asnLine,
		Text: " peer " + f.BGP.Peers[0].Addr.String() + " as-number 64999",
	}}}.Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop0"] = next
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("wrong-ASN repair infeasible: %s", res.Summary())
	}
	found := false
	for _, a := range res.Applied {
		if strings.Contains(a, "fix-peer-asn") {
			found = true
		}
	}
	if !found {
		t.Errorf("applied = %v, want fix-peer-asn", res.Applied)
	}
	checkRepaired(t, p, res)
}

func TestRepairMissingRedistribution(t *testing.T) {
	// Table 1's most common class (20.8%).
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{StaticOriginEvery: 1})
	f := netcfg.MustParse(s.Configs["pop1"])
	if f.BGP.Redistribute == nil {
		t.Fatal("scenario setup: pop1 lacks static origination")
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: f.BGP.Redistribute.Line}}}.Apply(s.Configs["pop1"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop1"] = next
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("missing-redistribution repair infeasible: %s", res.Summary())
	}
	found := false
	for _, a := range res.Applied {
		if strings.Contains(a, "add-redistribute-static") {
			found = true
		}
	}
	if !found {
		t.Errorf("applied = %v, want add-redistribute-static", res.Applied)
	}
	checkRepaired(t, p, res)
}

func TestRepairLeftoverMaintenancePolicy(t *testing.T) {
	// Table 1 class: "Fail to dis-enable route map". Attach the dormant
	// Maintenance deny-all to a PoP-facing import on the backbone... on the
	// PoP's own uplink import, killing the PoP's routes.
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	cfg := s.Configs["pop2"]
	f := netcfg.MustParse(cfg)
	peer := f.BGP.Peers[0]
	edits := netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: peer.ASNLine + 1, Text: netcfg.FormatPeerPolicyLine(peer.Addr.String(), "Maintenance", netcfg.Import)},
	}}
	next, err := edits.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// pop stubs do not define Maintenance; define it (deny-all) as the
	// leftover state.
	next, err = netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: next.NumLines() + 1, Text: "route-policy Maintenance deny node 10"},
	}}.Apply(next)
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop2"] = next
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("leftover-policy repair infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestRepairIsolationLeakMissingGroup(t *testing.T) {
	// Table 1 class: "Missing peer group": a backbone router's PoP peer
	// lost its group membership, so the NoLeak export policy no longer
	// applies and DCN prefixes leak.
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	var victim string
	var memberLine int
	for d, c := range s.Configs {
		f := netcfg.MustParse(c)
		if f.BGP == nil {
			continue
		}
		for _, pe := range f.BGP.Peers {
			if pe.Group == scenario.WANGroupPoPFacing && pe.GroupLine > 0 {
				victim, memberLine = d, pe.GroupLine
			}
		}
		if victim != "" {
			break
		}
	}
	if victim == "" {
		t.Fatal("no PoPFacing membership found")
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: memberLine}}}.Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs[victim] = next
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("missing-group repair infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestRepairExtraGroupItem(t *testing.T) {
	// Table 1 class: "Extra items in peer group": a DCN peer wrongly added
	// to the PoPFacing group gets DCN routes export-denied, breaking
	// DCN-to-DCN reachability.
	// WAN(4,3,2) places a PoP and a DCN on the same backbone router, so a
	// router with both a PoPFacing group and a DCN peer exists.
	s := scenario.WAN(4, 3, 2, scenario.GenOptions{})
	var victim string
	var asnLine int
	var addr string
	for d, c := range s.Configs {
		f := netcfg.MustParse(c)
		if f.BGP == nil {
			continue
		}
		hasPopFacing := f.GroupByName(scenario.WANGroupPoPFacing) != nil
		for _, pe := range f.BGP.Peers {
			if pe.Group == scenario.WANGroupDCNFacing && hasPopFacing {
				victim, asnLine, addr = d, pe.GroupLine, pe.Addr.String()
			}
		}
		if victim != "" {
			break
		}
	}
	if victim == "" {
		t.Skip("no router with both DCN peer and PoPFacing group")
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.ReplaceLine{At: asnLine, Text: " peer " + addr + " group " + scenario.WANGroupPoPFacing},
	}}.Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs[victim] = next
	p := problemOf(s)
	base := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	if base.BaseReport().NumFailed() == 0 {
		t.Skip("injection caused no failure in this topology")
	}
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("extra-group-item repair infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestRepairMissingPBRRule(t *testing.T) {
	// Table 1 class: "Missing permit rules in PBR": drop a scrubber rule;
	// the waypoint intent fails; the engine must re-insert a redirect.
	s := scenario.DCN(4, scenario.GenOptions{WithScrubber: true})
	cfg := s.Configs["spine0-0"]
	f := netcfg.MustParse(cfg)
	pol := f.PBRPolicyByName("Scrub")
	if pol == nil || len(pol.Rules) == 0 {
		t.Fatal("scrub policy missing")
	}
	r := pol.Rules[0]
	var dels []netcfg.Edit
	for l := r.Line; l <= r.End; l++ {
		dels = append(dels, netcfg.DeleteLine{At: l})
	}
	next, err := netcfg.EditSet{Edits: dels}.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["spine0-0"] = next
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("missing-PBR-rule repair infeasible: %s", res.Summary())
	}
	found := false
	for _, a := range res.Applied {
		if strings.Contains(a, "add-pbr-permit-rule") {
			found = true
		}
	}
	if !found {
		t.Errorf("applied = %v, want add-pbr-permit-rule", res.Applied)
	}
	checkRepaired(t, p, res)
}

func TestRepairExtraPBRRedirect(t *testing.T) {
	// Table 1 class: "Extra redirect rule in PBR": a rule bouncing traffic
	// back toward its source creates a forwarding loop.
	s := scenario.DCN(4, scenario.GenOptions{WithScrubber: true})
	cfg := s.Configs["spine0-0"]
	f := netcfg.MustParse(cfg)
	pol := f.PBRPolicyByName("Scrub")
	var leafAddr, dstPrefix string
	for _, adj := range s.Topo.Adjacencies("spine0-0") {
		if adj.PeerNode == "leaf0-0" {
			leafAddr = adj.PeerAddr.String()
		}
	}
	dstPrefix = s.Topo.Node("leaf0-1").Originates[0].String()
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: pol.Line + 1, Text: " rule 5 permit"},
		netcfg.InsertBefore{At: pol.Line + 1, Text: "  match destination " + dstPrefix},
		netcfg.InsertBefore{At: pol.Line + 1, Text: "  apply next-hop " + leafAddr},
	}}.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["spine0-0"] = next
	p := problemOf(s)
	base := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	if base.BaseReport().NumFailed() == 0 {
		t.Fatal("extra redirect caused no failure; injection broken")
	}
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("extra-redirect repair infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestRepairResultBookkeeping(t *testing.T) {
	s := scenario.Figure2()
	res := core.Repair(problemOf(s), core.Options{Strategy: core.BruteForce})
	if res.CandidatesValidated == 0 || res.PrefixSimulations == 0 {
		t.Errorf("bookkeeping empty: %+v", res)
	}
	if len(res.Logs) != res.Iterations {
		t.Errorf("logs = %d, iterations = %d", len(res.Logs), res.Iterations)
	}
	if len(res.Diffs) == 0 {
		t.Error("no diffs recorded for a feasible repair")
	}
	sum := res.Summary()
	if !strings.Contains(sum, "feasible=true") {
		t.Errorf("summary = %q", sum)
	}
}

func TestRepairDeterministicWithSeed(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	r1 := core.Repair(p, core.Options{Strategy: core.Evolutionary, Seed: 42, MaxIterations: 25})
	r2 := core.Repair(p, core.Options{Strategy: core.Evolutionary, Seed: 42, MaxIterations: 25})
	if r1.Feasible != r2.Feasible || r1.Iterations != r2.Iterations {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", r1.Feasible, r1.Iterations, r2.Feasible, r2.Iterations)
	}
	if strings.Join(r1.Applied, "|") != strings.Join(r2.Applied, "|") {
		t.Errorf("applied differ:\n%v\n%v", r1.Applied, r2.Applied)
	}
}

func TestRepairIterationCapTermination(t *testing.T) {
	// An unfixable problem: intent to reach a prefix nobody can originate
	// (no topology owner, no statics) — engine must stop at the cap or
	// exhaustion, not loop forever.
	s := scenario.Figure2Correct()
	s.Intents = append(s.Intents, verify.ReachIntent("impossible", scenario.PrefixDCNS, mustPrefix("99.0.0.0/16")))
	res := core.Repair(problemOf(s), core.Options{MaxIterations: 5, Strategy: core.BruteForce})
	if res.Feasible {
		t.Fatal("impossible intent repaired?!")
	}
	if res.Termination != "exhausted" && res.Termination != "iteration-cap" {
		t.Errorf("termination = %q", res.Termination)
	}
	if res.Iterations > 5 {
		t.Errorf("iterations = %d exceeds cap", res.Iterations)
	}
}

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestResultReport(t *testing.T) {
	s := scenario.Figure2()
	res := core.Repair(problemOf(s), core.Options{Strategy: core.BruteForce})
	rep := res.Report(s.Configs)
	for _, want := range []string{
		"FEASIBLE UPDATE FOUND",
		"## Iterations",
		"## Most suspicious lines",
		"## Applied template instances",
		"## Configuration changes",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q\n%s", want, rep)
		}
	}
	// Infeasible report.
	s2 := scenario.Figure2Correct()
	s2.Intents = append(s2.Intents, verify.ReachIntent("impossible", scenario.PrefixDCNS, mustPrefix("99.0.0.0/16")))
	res2 := core.Repair(problemOf(s2), core.Options{MaxIterations: 3, Strategy: core.BruteForce})
	if !strings.Contains(res2.Report(s2.Configs), "NO FEASIBLE UPDATE") {
		t.Error("infeasible report missing status")
	}
}
