package core

import (
	"testing"
	"time"
)

// TestRetryJitterDeterministicAndBounded pins the full-jitter contract:
// the per-candidate stream is a pure function of (seed, candidate desc),
// so the backoff schedule cannot depend on worker count or validation
// order, and every draw stays within the doubling window [0, backoff].
func TestRetryJitterDeterministicAndBounded(t *testing.T) {
	const seed, desc = int64(42), "set-metric @ A:3"
	draw := func() []time.Duration {
		rng := retryRNG(seed, desc)
		out := make([]time.Duration, 0, 8)
		backoff := 250 * time.Millisecond
		for i := 0; i < 8; i++ {
			out = append(out, jitterBackoff(rng, backoff))
			backoff *= 2
		}
		return out
	}
	a, b := draw(), draw()
	backoff := 250 * time.Millisecond
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v — jitter stream is not deterministic", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] > backoff {
			t.Fatalf("draw %d: %v outside [0, %v]", i, a[i], backoff)
		}
		backoff *= 2
	}

	// Distinct candidates draw from distinct streams (otherwise every
	// retry storm across the population would still synchronize).
	other := retryRNG(seed, "set-metric @ B:7")
	same := true
	this := retryRNG(seed, desc)
	for i := 0; i < 8; i++ {
		if this.Int63() != other.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different candidate descs produced the same jitter stream")
	}

	if d := jitterBackoff(retryRNG(seed, desc), 0); d != 0 {
		t.Fatalf("jitterBackoff(0) = %v, want 0", d)
	}
}
