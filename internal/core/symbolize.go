package core

import (
	"fmt"
	"net/netip"
	"sort"

	"acr/internal/netcfg"
	"acr/internal/smt"
)

// solveListValue performs the paper's local symbolic step (§5 step 2) for
// one prefix-list on one device: the list's membership becomes a symbolic
// prefix-set variable; every test whose provenance shows the list's
// policies ran at this device contributes a constraint — passing tests
// must keep their match outcome (P), failing tests must flip theirs (¬F) —
// and the solver returns a minimal satisfying membership.
//
// Returns the solved member prefixes, whether a solution exists, and a
// human-readable constraint description for reports.
func solveListValue(ctx *Context, device, listName string) ([]netip.Prefix, bool, string) {
	f := ctx.Files[device]
	if f == nil {
		return nil, false, ""
	}
	entryLines := map[int]bool{}
	for _, e := range f.PrefixListEntries(listName) {
		entryLines[e.Line] = true
	}
	attachLines := attachLinesForList(f, listName)
	if len(attachLines) == 0 && len(entryLines) == 0 {
		return nil, false, ""
	}

	v := smt.PrefixSetVar("var")
	// polarity[p]: +1 keep/flip-to In, -1 keep/flip-to NotIn. Failing
	// constraints take precedence over passing ones on conflict — the
	// validator will catch any regression a dropped P-constraint hides.
	polarity := map[netip.Prefix]int{}
	fromFailing := map[netip.Prefix]bool{}
	consider := func(pass bool) {
		for _, verdict := range ctx.Report.Verdicts {
			if verdict.Pass != pass || !verdict.Prefix.IsValid() {
				continue
			}
			devLines := ctx.LinesOfPrefixAtDevice(verdict.Prefix, device)
			ran := false
			for l := range attachLines {
				if devLines[l] {
					ran = true
					break
				}
			}
			matched := false
			for l := range entryLines {
				if devLines[l] {
					matched = true
					break
				}
			}
			if !ran && !matched {
				continue
			}
			want := 0
			if pass {
				if matched {
					want = 1
				} else {
					want = -1
				}
			} else {
				if matched {
					want = -1
				} else {
					want = 1
				}
			}
			if prev, ok := polarity[verdict.Prefix]; ok {
				if prev != want && !pass {
					polarity[verdict.Prefix] = want // failing overrides
					fromFailing[verdict.Prefix] = true
				}
				_ = prev
				continue
			}
			polarity[verdict.Prefix] = want
			if !pass {
				fromFailing[verdict.Prefix] = true
			}
		}
	}
	consider(false) // failing first: they take precedence
	consider(true)
	if len(polarity) == 0 {
		return nil, false, ""
	}
	prefixes := make([]netip.Prefix, 0, len(polarity))
	for p := range polarity {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr() != prefixes[j].Addr() {
			return prefixes[i].Addr().Less(prefixes[j].Addr())
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	var conj []smt.Formula
	anyFailing := false
	for _, p := range prefixes {
		if polarity[p] > 0 {
			conj = append(conj, smt.In(p, v))
		} else {
			conj = append(conj, smt.Not(smt.In(p, v)))
		}
		if fromFailing[p] {
			anyFailing = true
		}
	}
	if !anyFailing {
		// No failing test interacts with this list; rewriting it cannot fix
		// anything.
		return nil, false, ""
	}
	formula := smt.And(conj...)
	model, ok := smt.NewProblem().Solve(formula)
	if !ok {
		return nil, false, smt.String(formula)
	}
	return model.Set("var"), true, smt.String(formula)
}

// attachLinesForList returns the lines of every policy attachment (and
// redistribute statement) on this device whose policy matches against the
// named list.
func attachLinesForList(f *netcfg.File, listName string) map[int]bool {
	policies := map[string]bool{}
	for _, p := range f.Policies {
		for _, m := range p.Matches {
			if m.Kind == netcfg.MatchIPPrefix && m.PrefixList == listName {
				policies[p.Name] = true
			}
		}
	}
	out := map[int]bool{}
	if f.BGP != nil {
		for _, pe := range f.BGP.Peers {
			for _, a := range pe.Policies {
				if policies[a.Policy] {
					out[a.Line] = true
				}
			}
		}
		for _, g := range f.BGP.Groups {
			for _, a := range g.Policies {
				if policies[a.Policy] {
					out[a.Line] = true
				}
			}
		}
		if f.BGP.Redistribute != nil && policies[f.BGP.Redistribute.Policy] {
			out[f.BGP.Redistribute.Line] = true
		}
	}
	return out
}

// rewriteListEdits turns a solved membership into line edits: existing
// entries are rewritten to exact permits for the solved prefixes, extra
// entries are deleted, and missing ones are inserted after the last entry.
func rewriteListEdits(f *netcfg.File, listName string, want []netip.Prefix) []netcfg.Edit {
	entries := f.PrefixListEntries(listName)
	var edits []netcfg.Edit
	n := len(entries)
	for i, p := range want {
		if i < n {
			e := entries[i]
			edits = append(edits, netcfg.ReplaceLine{
				At:   e.Line,
				Text: netcfg.FormatPrefixListEntry(listName, e.Index, true, p, 0, 0),
			})
			continue
		}
		after := 1
		idx := 10 * (i + 1)
		if n > 0 {
			after = entries[n-1].Line + 1
			idx = entries[n-1].Index + 10*(i-n+1)
		}
		edits = append(edits, netcfg.InsertBefore{
			At:   after,
			Text: netcfg.FormatPrefixListEntry(listName, idx, true, p, 0, 0),
		})
	}
	for j := len(want); j < n; j++ {
		edits = append(edits, netcfg.DeleteLine{At: entries[j].Line})
	}
	return edits
}

// listsAnchoredAt resolves which (device, list) pairs a suspicious line
// refers to: a prefix-list entry names its own list; a policy node, match,
// or apply line names the lists its policy matches; an attachment line
// names the lists of the attached policy.
func listsAnchoredAt(f *netcfg.File, line int) []string {
	role := Classify(f, line)
	lists := map[string]bool{}
	switch role {
	case RolePrefixListEntry:
		for _, e := range f.PrefixLists {
			if e.Line == line {
				lists[e.Name] = true
			}
		}
	case RolePolicyMatch:
		for _, p := range f.Policies {
			for _, m := range p.Matches {
				if m.Line == line && m.Kind == netcfg.MatchIPPrefix {
					lists[m.PrefixList] = true
				}
			}
		}
	case RolePolicyNode, RolePolicyApply:
		// The policy is the semantic unit: anchor every list matched by ANY
		// node of the policy containing this line (a traced pass-through
		// node often sits next to the deny node whose list needs fixing).
		var name string
		for _, p := range f.Policies {
			if p.Line == line || containsApply(p, line) {
				name = p.Name
			}
		}
		for _, p := range f.PolicyNodes(name) {
			for _, m := range p.Matches {
				if m.Kind == netcfg.MatchIPPrefix {
					lists[m.PrefixList] = true
				}
			}
		}
	case RolePolicyAttach:
		name := attachedPolicyAt(f, line)
		for _, p := range f.PolicyNodes(name) {
			for _, m := range p.Matches {
				if m.Kind == netcfg.MatchIPPrefix {
					lists[m.PrefixList] = true
				}
			}
		}
	}
	out := make([]string, 0, len(lists))
	for l := range lists {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func containsApply(p *netcfg.RoutePolicy, line int) bool {
	for _, a := range p.Applies {
		if a.Line == line {
			return true
		}
	}
	return false
}

// attachedPolicyAt returns the policy name attached at the given line.
func attachedPolicyAt(f *netcfg.File, line int) string {
	if f.BGP == nil {
		return ""
	}
	for _, pe := range f.BGP.Peers {
		for _, a := range pe.Policies {
			if a.Line == line {
				return a.Policy
			}
		}
	}
	for _, g := range f.BGP.Groups {
		for _, a := range g.Policies {
			if a.Line == line {
				return a.Policy
			}
		}
	}
	return ""
}

// describeEdits renders an update description.
func describeEdits(template string, anchor netcfg.LineRef, detail string) string {
	if detail == "" {
		return fmt.Sprintf("%s @ %s", template, anchor)
	}
	return fmt.Sprintf("%s @ %s (%s)", template, anchor, detail)
}
