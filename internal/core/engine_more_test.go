package core_test

import (
	"strings"
	"testing"

	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
)

// doubleFaultScenario layers the prefix-list leak and the extra-group
// faults onto one WAN (the combination that exercises scope widening).
func doubleFaultScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	s := scenario.WAN(4, 3, 2, scenario.GenOptions{FullIsolation: true})
	// Fault 1: delete a DCN prefix-list entry on the first isolating router.
	var done1 bool
	for _, nd := range s.Topo.Nodes() {
		f := netcfg.MustParse(s.Configs[nd.Name])
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g == nil || len(g.Policies) == 0 {
			continue
		}
		entries := f.PrefixListEntries(scenario.WANListDCN)
		if len(entries) < 2 {
			continue
		}
		next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: entries[0].Line}}}.Apply(s.Configs[nd.Name])
		if err != nil {
			t.Fatal(err)
		}
		s.Configs[nd.Name] = next
		done1 = true
		break
	}
	if !done1 {
		t.Fatal("no leak site")
	}
	// Fault 2: leftover maintenance policy on a stub.
	cfg := s.Configs["pop2"]
	f := netcfg.MustParse(cfg)
	peer := f.BGP.Peers[0]
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{
		netcfg.InsertBefore{At: peer.ASNLine + 1, Text: netcfg.FormatPeerPolicyLine(peer.Addr.String(), "Maintenance", netcfg.Import)},
		netcfg.InsertBefore{At: cfg.NumLines() + 1, Text: "route-policy Maintenance deny node 10"},
	}}.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop2"] = next
	return s
}

func TestRepairDoubleFaultWithWidening(t *testing.T) {
	s := doubleFaultScenario(t)
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !res.Feasible {
		t.Fatalf("double fault infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
	if len(res.Applied) < 2 {
		t.Errorf("applied = %v, want at least two template applications", res.Applied)
	}
}

func TestRepairSmallCapsStillFeasible(t *testing.T) {
	// Tight knobs force multiple widening rounds but must not break
	// feasibility on the worked example.
	s := scenario.Figure2()
	p := problemOf(s)
	res := core.Repair(p, core.Options{
		Strategy:      core.BruteForce,
		TopKLines:     2,
		CandidateCap:  4,
		PopulationCap: 2,
		MaxIterations: 40,
	})
	if !res.Feasible {
		t.Fatalf("tight caps infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestRepairFullValidationEquivalent(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	inc := core.Repair(p, core.Options{Strategy: core.BruteForce})
	full := core.Repair(p, core.Options{Strategy: core.BruteForce, FullValidation: true})
	if inc.Feasible != full.Feasible {
		t.Fatalf("feasibility differs: incremental=%v full=%v", inc.Feasible, full.Feasible)
	}
	if strings.Join(inc.Applied, "|") != strings.Join(full.Applied, "|") {
		t.Errorf("applied differ:\n%v\n%v", inc.Applied, full.Applied)
	}
	if full.IntentChecks < inc.IntentChecks {
		t.Errorf("full validation did fewer intent checks (%d) than incremental (%d)",
			full.IntentChecks, inc.IntentChecks)
	}
}

func TestRepairCustomFormula(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	res := core.Repair(p, core.Options{Strategy: core.BruteForce, Formula: sbfl.Ochiai})
	if !res.Feasible {
		t.Fatalf("Ochiai-driven repair infeasible: %s", res.Summary())
	}
	checkRepaired(t, p, res)
}

func TestIterationLogsConsistency(t *testing.T) {
	s := doubleFaultScenario(t)
	res := core.Repair(problemOf(s), core.Options{Strategy: core.BruteForce})
	if len(res.Logs) == 0 {
		t.Fatal("no logs")
	}
	totalValidated := 0
	for i, lg := range res.Logs {
		if lg.Iteration != i+1 {
			t.Errorf("log %d has iteration %d", i, lg.Iteration)
		}
		if lg.Validated > lg.Generated {
			t.Errorf("iteration %d validated %d > generated %d", lg.Iteration, lg.Validated, lg.Generated)
		}
		totalValidated += lg.Validated
	}
	if totalValidated != res.CandidatesValidated {
		t.Errorf("log validated sum %d != result %d", totalValidated, res.CandidatesValidated)
	}
}
