// Package core implements the paper's contribution: Automatic
// Configuration Repair via localize–fix–validate (Figure 4 of the paper).
//
//   - Localize: run the intent suite as tests, build the coverage spectrum
//     from provenance, score every configuration line with SBFL
//     (Tarantula by default).
//   - Fix: apply change templates — one per misconfiguration class of
//     Table 1 — to the most suspicious lines. Parameter values (prefix
//     sets, AS numbers) are solved locally with the smt package from
//     constraints collected over the provenance of passing and failing
//     tests (P ∧ ¬F).
//   - Validate: check every candidate with the incremental verifier;
//     fitness is the number of failing tests; candidates whose fitness
//     exceeds the previous iteration's are discarded.
//
// The engine iterates until a feasible update is found (fitness 0), no
// candidates remain, or the iteration cap (500, per the paper) is hit.
package core

import (
	"acr/internal/netcfg"
)

// LineRole classifies what construct a configuration line is part of, so
// templates can decide applicability.
type LineRole uint8

// Line roles.
const (
	RoleUnknown LineRole = iota
	RoleBGPHeader
	RolePeerASN
	RolePeerGroupMembership
	RoleGroupDecl
	RolePolicyAttach // peer or peer-group route-policy attachment
	RoleNetworkStmt
	RoleRedistribute
	RolePolicyNode
	RolePolicyMatch
	RolePolicyApply
	RolePrefixListEntry
	RoleStaticRoute
	RolePBRPolicy
	RolePBRRule
	RolePBRRuleBody
	RoleInterface
)

// String names the role.
func (r LineRole) String() string {
	switch r {
	case RoleBGPHeader:
		return "bgp-header"
	case RolePeerASN:
		return "peer-asn"
	case RolePeerGroupMembership:
		return "peer-group-membership"
	case RoleGroupDecl:
		return "group-decl"
	case RolePolicyAttach:
		return "policy-attach"
	case RoleNetworkStmt:
		return "network"
	case RoleRedistribute:
		return "redistribute"
	case RolePolicyNode:
		return "policy-node"
	case RolePolicyMatch:
		return "policy-match"
	case RolePolicyApply:
		return "policy-apply"
	case RolePrefixListEntry:
		return "prefix-list-entry"
	case RoleStaticRoute:
		return "static-route"
	case RolePBRPolicy:
		return "pbr-policy"
	case RolePBRRule:
		return "pbr-rule"
	case RolePBRRuleBody:
		return "pbr-rule-body"
	case RoleInterface:
		return "interface"
	}
	return "unknown"
}

// Classify determines the role of a 1-based line in a parsed file.
func Classify(f *netcfg.File, line int) LineRole {
	if f == nil {
		return RoleUnknown
	}
	if b := f.BGP; b != nil {
		if b.Line == line {
			return RoleBGPHeader
		}
		for _, p := range b.Peers {
			if p.ASNLine == line {
				return RolePeerASN
			}
			if p.GroupLine == line {
				return RolePeerGroupMembership
			}
			for _, a := range p.Policies {
				if a.Line == line {
					return RolePolicyAttach
				}
			}
		}
		for _, g := range b.Groups {
			for _, a := range g.Policies {
				if a.Line == line {
					return RolePolicyAttach
				}
			}
			if g.Line == line {
				return RoleGroupDecl
			}
		}
		for _, n := range b.Networks {
			if n.Line == line {
				return RoleNetworkStmt
			}
		}
		if b.Redistribute != nil && b.Redistribute.Line == line {
			return RoleRedistribute
		}
	}
	for _, p := range f.Policies {
		if p.Line == line {
			return RolePolicyNode
		}
		for _, m := range p.Matches {
			if m.Line == line {
				return RolePolicyMatch
			}
		}
		for _, a := range p.Applies {
			if a.Line == line {
				return RolePolicyApply
			}
		}
	}
	for _, e := range f.PrefixLists {
		if e.Line == line {
			return RolePrefixListEntry
		}
	}
	for _, s := range f.Statics {
		if s.Line == line {
			return RoleStaticRoute
		}
	}
	for _, pol := range f.PBRPolicies {
		if pol.Line == line {
			return RolePBRPolicy
		}
		for _, r := range pol.Rules {
			if r.Line == line {
				return RolePBRRule
			}
			if line > r.Line && line <= r.End {
				return RolePBRRuleBody
			}
		}
	}
	for _, i := range f.Interfaces {
		if line >= i.Line && line <= i.End {
			return RoleInterface
		}
	}
	return RoleUnknown
}
