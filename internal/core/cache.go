package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"acr/internal/journal"
	"acr/internal/netcfg"
)

// EvalStore is the persistent layer under the in-memory evaluation cache:
// a content-addressed store of validated fitness values shared across runs,
// processes, and fleet peers (internal/evalstore implements it; core only
// sees the interface so the dependency points outward). The store is
// advisory by contract — implementations must degrade every failure to a
// miss — and its answers are consulted only for digests the in-memory
// cache does not hold, so a warm store changes which validations simulate,
// never what any validation decides.
type EvalStore interface {
	// Get looks a digest up. ok reports a verified entry; corrupt reports
	// that an entry existed but failed integrity verification (the lookup
	// is still a miss — the engine re-simulates and may re-store).
	Get(digest string) (fitness int, ok, corrupt bool)
	// Put stores a validated fitness. Implementations never fail the
	// caller; a lost write simply stays a miss.
	Put(digest string, fitness int)
}

// evalCache is the run-scoped content-addressed fitness cache: it maps the
// canonical digest of a post-edit configuration set to the fitness
// (failing-intent count) validation computed for it. Proposals that
// resurface — across iterations, widening rounds, or a crash→resume
// boundary — are answered without re-simulating the network. Fitness is a
// pure function of the configuration set under a fixed problem, so hits
// are exact, not approximate.
//
// The cache is not safe for concurrent use and does not need to be: only
// the engine goroutine touches it, at batch dispatch (digest + lookup)
// and in the merge loop (store). Validation workers never see it, which
// is also what keeps cache state — and therefore the CacheHits/CacheMisses
// counters — deterministic at any parallelism level.
type evalCache struct {
	enabled bool
	fitness map[string]int
	// cfg memoizes per-config content digests by pointer. Only long-lived
	// configurations (population members' post-edit maps share the
	// parent's pointers for unedited devices) are memoized; the transient
	// configs produced while digesting a proposal are hashed and dropped.
	cfg map[*netcfg.Config]string
	// store is the persistent layer (nil = memory only). It is consulted
	// only at batch classification, for digests missing from memory, and
	// written back only from the merge loop — the same single-goroutine
	// discipline that keeps the in-memory counters deterministic.
	store EvalStore
	// storeCorrupt counts store entries that failed integrity verification
	// during this run (folded into Result.StoreCorrupt at the end).
	storeCorrupt int
}

// newEvalCache builds the run's cache; disabled caches answer no lookups
// and store nothing, so the NoCache ablation leaves both counters at zero.
// NoCache also severs the persistent store: digests are never computed, so
// nothing could be looked up or written back anyway, and the ablation must
// measure a run with no caching of any kind.
func newEvalCache(opts Options) *evalCache {
	ec := &evalCache{
		enabled: !opts.NoCache,
		fitness: map[string]int{},
		cfg:     map[*netcfg.Config]string{},
	}
	if ec.enabled {
		ec.store = opts.Store
	}
	return ec
}

// configDigest hashes one configuration's exact line content (length-framed
// so no two line slices collide), memoizing by pointer.
func (c *evalCache) configDigest(cfg *netcfg.Config) string {
	if d, ok := c.cfg[cfg]; ok {
		return d
	}
	d := hashLines(cfg.Lines())
	c.cfg[cfg] = d
	return d
}

func hashLines(lines []string) string {
	h := sha256.New()
	for _, ln := range lines {
		fmt.Fprintf(h, "%d:", len(ln))
		h.Write([]byte(ln))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:])
}

// digest computes the content address of a proposal: the digest of the
// configuration set that validating it would verify. It applies the
// update's edits exactly the way the verifier does (verify.Incremental's
// applyEdits: sets compose in order against the parent's configs) and
// reports ok=false under the same conditions the verifier rejects the
// candidate — unknown device, out-of-range or conflicting edits — so a
// malformed proposal can never alias the digest of a well-formed one and
// steal its cached fitness. ok=false also when the cache is disabled.
func (c *evalCache) digest(pr *proposal) (string, bool) {
	if !c.enabled {
		return "", false
	}
	base := pr.parent.configs
	var edited map[string]*netcfg.Config
	for _, es := range pr.update.Edits {
		cur, ok := edited[es.Device]
		if !ok {
			if cur, ok = base[es.Device]; !ok {
				return "", false
			}
		}
		next, err := es.Apply(cur)
		if err != nil {
			return "", false
		}
		if edited == nil {
			edited = map[string]*netcfg.Config{}
		}
		edited[es.Device] = next
	}
	devices := make([]string, 0, len(base))
	for d := range base {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	h := sha256.New()
	for _, d := range devices {
		var cd string
		if cfg, ok := edited[d]; ok {
			cd = hashLines(cfg.Lines()) // transient: not worth memoizing
		} else {
			cd = c.configDigest(base[d])
		}
		fmt.Fprintf(h, "%s\x00%s\n", d, cd)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// get looks a digest up.
func (c *evalCache) get(d string) (int, bool) {
	if !c.enabled || d == "" {
		return 0, false
	}
	fit, ok := c.fitness[d]
	return fit, ok
}

// put stores a successfully validated candidate's fitness. Only the merge
// loop calls it, in proposal order, so cache contents never depend on
// worker scheduling.
func (c *evalCache) put(d string, fitness int) {
	if !c.enabled || d == "" {
		return
	}
	if _, ok := c.fitness[d]; !ok {
		c.fitness[d] = fitness
	}
}

// storeGet consults the persistent store for a digest the in-memory cache
// missed. Corrupt entries are tallied (the store has already quarantined
// them) and reported as misses. Called only from batch classification on
// the engine goroutine, in proposal order, so the sequence of store reads —
// and therefore any fault-injection schedule against them — is identical
// at every parallelism level.
func (c *evalCache) storeGet(d string) (int, bool) {
	if c.store == nil || d == "" {
		return 0, false
	}
	fit, ok, corrupt := c.store.Get(d)
	if corrupt {
		c.storeCorrupt++
	}
	if !ok || fit < 0 {
		return 0, false
	}
	return fit, true
}

// storePut writes a simulated fitness through to the persistent store.
// Merge-loop only, like put.
func (c *evalCache) storePut(d string, fitness int) {
	if c.store == nil || d == "" || fitness < 0 {
		return
	}
	c.store.Put(d, fitness)
}

// warm preloads the cache from a resumed session's journaled candidate
// events. Only candidates at or before the restored checkpoint's iteration
// are loaded: those are exactly the entries the straight-through run's
// cache held at that boundary (later candidates are regenerated by the
// resumed loop), which is what keeps a resumed run's hit/miss counters —
// and therefore Result.Canonical — byte-identical to an uninterrupted
// run's. Journals written before digests existed warm nothing.
//
// Warmed entries are also written through to the persistent store: a fleet
// node adopting a crashed peer's session replays fitness values its own
// local view may never have seen, and writing them back makes the adoption
// pay the dead node's evaluations forward. Put skips digests the store
// already holds, so re-warming an already-shared store is free.
func (c *evalCache) warm(cands []journal.Candidate, upTo int) {
	if !c.enabled {
		return
	}
	for _, cd := range cands {
		if cd.Iteration <= upTo && cd.Digest != "" && cd.Fitness >= 0 {
			c.put(cd.Digest, cd.Fitness)
			c.storePut(cd.Digest, cd.Fitness)
		}
	}
}
