package core

import (
	"errors"
	"fmt"
)

// ErrorKind classifies the failures a repair run can absorb or end on.
// The engine never surfaces a raw panic or bare context error: everything
// that interrupts the pipeline is wrapped in a RepairError so callers (the
// service layer, CLIs, the chaos harness) can dispatch on Kind.
type ErrorKind string

// The error taxonomy.
const (
	// KindCanceled: the caller's context was canceled.
	KindCanceled ErrorKind = "canceled"
	// KindDeadline: the run's deadline (Options.Deadline / MaxWallClock /
	// a context deadline) expired.
	KindDeadline ErrorKind = "deadline"
	// KindCandidatePanic: a template, parser edit, or simulator panicked
	// while generating or validating one candidate. The candidate is
	// quarantined; the run continues.
	KindCandidatePanic ErrorKind = "candidate-panic"
	// KindCandidateTimeout: one candidate's validation exceeded
	// Options.CandidateTimeout. The candidate is skipped.
	KindCandidateTimeout ErrorKind = "candidate-timeout"
	// KindTransient: the validator reported a retryable fault (in
	// production, a backend hiccup; under chaos, an injected one). The
	// engine retries with backoff before giving up on the candidate.
	KindTransient ErrorKind = "transient"
	// KindValidation: a candidate was structurally invalid (conflicting or
	// out-of-range edits). Expected during search; never fatal.
	KindValidation ErrorKind = "validation"
	// KindImpactDivergence: differential mode caught the static impact
	// analysis pruning unsoundly — a pruned verdict disagreed with the
	// full simulation. Terminal: the run stops so the analysis defect is
	// fixed instead of silently corrupting the search.
	KindImpactDivergence ErrorKind = "impact-divergence"
	// KindDeltaDivergence: delta-differential mode caught the delta BGP
	// simulator reaching a different fixpoint than a cold full simulation
	// for some prefix. Terminal for the same reason as impact divergences:
	// every verdict downstream of the bad outcome is suspect.
	KindDeltaDivergence ErrorKind = "delta-divergence"
	// KindJournal: the write-ahead journal could not be appended to or a
	// checkpoint could not be restored. Durability degrades (journaling is
	// disabled for the rest of the run, or a population member is dropped
	// on restore); the search itself continues.
	KindJournal ErrorKind = "journal"
)

// RepairError is one classified failure observed during a run. Quarantined
// failures (panics, timeouts, transient faults) are collected in
// Result.Errors; terminal ones (canceled, deadline) also decide
// Result.Termination.
type RepairError struct {
	Kind ErrorKind
	// Op names the pipeline stage that failed: "generate", "validate",
	// "preserve", "run".
	Op string
	// Candidate describes the update being processed, when there was one.
	Candidate string
	// Err is the underlying error, if any.
	Err error
	// Stack is the captured goroutine stack for KindCandidatePanic.
	Stack []byte
}

// Error implements error.
func (e *RepairError) Error() string {
	s := fmt.Sprintf("repair: %s during %s", e.Kind, e.Op)
	if e.Candidate != "" {
		s += fmt.Sprintf(" (candidate %q)", e.Candidate)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RepairError) Unwrap() error { return e.Err }

// Transient reports whether the failure is worth retrying.
func (e *RepairError) Transient() bool { return e.Kind == KindTransient }

// transienter is the retry contract: any error advertising Transient()
// (e.g. the chaos harness's injected faults) gets the engine's
// retry-with-backoff treatment at the validation boundary.
type transienter interface{ Transient() bool }

// IsTransient reports whether err (or anything it wraps) is retryable.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// maxStoredErrors caps Result.Errors so a pathological run (or a hostile
// chaos plan) cannot balloon the result; the full count survives in the
// counters.
const maxStoredErrors = 16

func (r *Result) recordError(e *RepairError) {
	if len(r.Errors) < maxStoredErrors {
		r.Errors = append(r.Errors, e)
	}
}
