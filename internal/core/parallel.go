package core

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"acr/internal/verify"
)

// This file is the parallel validation stage: a bounded worker pool
// evaluates one iteration's proposals concurrently while a single-threaded
// merge loop (in RepairContext) consumes the outcomes strictly in proposal
// order. Every piece of shared state — Result counters, the iteration log,
// journal appends, the best-effort tracker, the evaluation cache, the
// feasibility early-exit — is touched only by the merge loop, so the
// observable result is byte-identical at any parallelism level: workers
// only ever fill in their own valOutcome slot and each worker validates
// against its own verify.Incremental clone.
//
// The one caveat is wall-clock-dependent options: a CandidateTimeout can
// legitimately trip under parallel load where it would not serially (and
// vice versa), so byte-identity across parallelism levels is guaranteed
// for runs whose outcomes do not depend on wall-clock races — which is
// every run without CandidateTimeout quarantines. Chaos injection is
// call-order-dependent by design (the injector counts validator and
// simulator invocations), so a run with an injector wired forces the
// effective worker count to one.

// valStats collects one candidate's validation counters and errors. The
// worker that validates the candidate fills it in; the merge loop folds it
// into the Result in proposal order, so counter totals cannot depend on
// worker interleaving.
type valStats struct {
	prefixSims   int
	intentChecks int
	refuted      int
	scoped       int
	broad        int
	derived      int
	deltaReused  int
	deltaResim   int
	activations  int
	retries      int
	panicked     int
	timedOut     int
	errs         []*RepairError
}

func (s *valStats) recordError(e *RepairError) { s.errs = append(s.errs, e) }

// mergeInto folds the per-candidate counters into the run result.
func (s *valStats) mergeInto(res *Result) {
	res.PrefixSimulations += s.prefixSims
	res.IntentChecks += s.intentChecks
	res.StaticallyRefuted += s.refuted
	res.ImpactScoped += s.scoped
	res.ImpactBroad += s.broad
	res.LeafDerivations += s.derived
	res.DeltaReused += s.deltaReused
	res.DeltaResimulated += s.deltaResim
	res.SimActivations += s.activations
	res.ValidationRetries += s.retries
	res.CandidatesPanicked += s.panicked
	res.CandidatesTimedOut += s.timedOut
	for _, e := range s.errs {
		res.recordError(e)
	}
}

// Outcome modes, decided at dispatch time (before any validation runs) so
// the classification is identical at every parallelism level.
const (
	// modeCompute: this proposal is validated by a worker (or lazily by
	// the merge loop when the batch runs serially).
	modeCompute uint8 = iota
	// modeHit: the evaluation cache already held this proposal's digest.
	modeHit
	// modeFollower: an earlier proposal in this batch (the leader) has the
	// same digest; the follower takes the leader's merged fitness — the
	// same answer the serial engine's cache would have given it.
	modeFollower
	// modeStore: the persistent evaluation store held this proposal's
	// digest. The simulation is skipped, but the merge loop accounts the
	// proposal exactly like a freshly simulated one — an in-memory cache
	// miss whose fitness enters the cache — so CacheHits/CacheMisses (which
	// are part of Canonical()) are byte-identical to a cold-store run; only
	// the StoreHits/StoreMisses/PrefixSimulations cost counters, all
	// excluded from Canonical(), reveal the store was there.
	modeStore
)

// valOutcome is one proposal's validation slot.
type valOutcome struct {
	mode    uint8
	digest  string // "" when unaddressable (cache disabled or malformed edits)
	leader  int    // modeFollower: index of the in-batch leader
	fitness int
	ok      bool  // fitness is valid
	hit     bool  // answered from the cache (or the in-batch leader)
	err     error // terminal validation error when !ok
	stats   valStats
	done    chan struct{} // closed by the worker that filled this slot in
}

// batchValidator runs one iteration's proposals through validation.
type batchValidator struct {
	ctx     context.Context // run context: merge-side (lazy) validations
	bctx    context.Context // batch context: worker validations
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	opts    Options
	props   []proposal
	outs    []valOutcome
	queue   []int   // indices needing computation, in proposal order
	groups  [][]int // queue partitioned into sibling groups (see groupSiblings)
	pos     atomic.Int64
	lazy    bool // single worker: validate on demand in the merge loop
	workers int
	// batched lists the verifiers this batch installed a parse memo on
	// (lazy mode only: the parents' own verifiers, which outlive the
	// batch and must be unbatched in close). Worker clones die with the
	// worker and need no cleanup.
	batched []*verify.Incremental
}

// groupSiblings partitions the compute queue into sibling groups — same
// parent, same set of edited devices — preserving proposal order within
// each group, with groups ordered by first member. Sibling candidates
// (different template instances at the same suspicious lines) leave every
// other device's post-edit text identical and frequently collide even on
// the edited device, so one worker validating a group under a shared
// parse memo (verify.BeginBatch) parses each distinct text once instead
// of once per sibling.
func groupSiblings(props []proposal, queue []int) [][]int {
	type gkey struct {
		parent *candidate
		devs   string
	}
	index := map[gkey]int{}
	var groups [][]int
	for _, i := range queue {
		names := make([]string, 0, len(props[i].update.Edits))
		for _, es := range props[i].update.Edits {
			names = append(names, es.Device)
		}
		sort.Strings(names)
		k := gkey{parent: props[i].parent, devs: strings.Join(names, "|")}
		if gi, ok := index[k]; ok {
			groups[gi] = append(groups[gi], i)
		} else {
			index[k] = len(groups)
			groups = append(groups, []int{i})
		}
	}
	return groups
}

// newBatchValidator classifies every proposal against the cache (hit,
// follower, or compute) and — when more than one worker is effective —
// starts the pool. With one worker no goroutine is spawned at all:
// validation happens lazily inside the merge loop, which is exactly the
// pre-parallelism engine's execution order (and what keeps the stateful
// chaos injector's call sequence reproducible, hence the forced single
// worker whenever an injection seam is wired).
func newBatchValidator(ctx context.Context, props []proposal, opts Options, cache *evalCache) *batchValidator {
	workers := opts.Parallelism
	if opts.Chaos != nil || opts.SimOpts.PrefixHook != nil {
		workers = 1
	}
	if workers > len(props) {
		workers = len(props)
	}
	if workers < 1 {
		workers = 1
	}
	bv := &batchValidator{ctx: ctx, opts: opts, props: props, workers: workers, lazy: workers == 1}
	bv.outs = make([]valOutcome, len(props))
	leaders := map[string]int{}
	for i := range props {
		out := &bv.outs[i]
		out.leader = -1
		d, ok := cache.digest(&props[i])
		if !ok {
			bv.queue = append(bv.queue, i)
			continue
		}
		out.digest = d
		if fit, hit := cache.get(d); hit {
			out.mode = modeHit
			out.fitness, out.ok, out.hit = fit, true, true
			continue
		}
		if j, dup := leaders[d]; dup {
			out.mode = modeFollower
			out.leader = j
			continue
		}
		leaders[d] = i
		// Only distinct digests reach the persistent store: one disk read
		// per batch leader, on the engine goroutine, in proposal order —
		// never from workers — so store I/O (and any injected store fault
		// sequence) is deterministic at every parallelism level.
		if fit, ok := cache.storeGet(d); ok {
			out.mode = modeStore
			out.fitness, out.ok = fit, true
			continue
		}
		bv.queue = append(bv.queue, i)
	}
	if !bv.lazy {
		for _, i := range bv.queue {
			bv.outs[i].done = make(chan struct{})
		}
		bv.groups = groupSiblings(props, bv.queue)
		bv.bctx, bv.cancel = context.WithCancel(ctx)
		for w := 0; w < workers; w++ {
			bv.wg.Add(1)
			go bv.worker()
		}
	} else if !opts.NoBatch {
		// Lazy mode validates on the parents' own verifiers from the merge
		// loop — still one goroutine, so the parse memo is safe to install
		// there for the duration of the batch.
		seen := map[*verify.Incremental]bool{}
		for _, i := range bv.queue {
			if iv := bv.props[i].parent.iv; !seen[iv] {
				seen[iv] = true
				iv.BeginBatch()
				bv.batched = append(bv.batched, iv)
			}
		}
	}
	return bv
}

// worker drains the compute queue. Each worker validates against its own
// verifier clones (one per distinct parent), so no mutable verification
// state is ever shared across goroutines. The loop always processes every
// queue entry — once the batch context is cancelled each validation
// returns immediately with the context error — so every done channel is
// guaranteed to close and the merge loop can never block on an abandoned
// slot.
// Work is handed out in sibling groups rather than single proposals so
// each group's checks run on one verifier clone behind a shared parse
// memo; which worker runs a group cannot matter, because clones of the
// same parent are interchangeable and the memo caches a pure function.
func (bv *batchValidator) worker() {
	defer bv.wg.Done()
	clones := map[*candidate]*verify.Incremental{}
	for {
		n := int(bv.pos.Add(1)) - 1
		if n >= len(bv.groups) {
			return
		}
		group := bv.groups[n]
		parent := bv.props[group[0]].parent // one parent per group, by construction
		iv := clones[parent]
		if iv == nil {
			iv = parent.iv.Clone()
			clones[parent] = iv
		}
		if !bv.opts.NoBatch {
			iv.BeginBatch()
		}
		for _, i := range group {
			bv.validateOne(bv.bctx, i, iv)
			close(bv.outs[i].done)
		}
		iv.EndBatch()
	}
}

// validateOne runs one proposal through the full resilience boundary and
// records the outcome in its slot.
func (bv *batchValidator) validateOne(ctx context.Context, i int, iv *verify.Incremental) {
	out := &bv.outs[i]
	rep, err := validateCandidate(ctx, &out.stats, iv, &bv.props[i], bv.opts)
	if err != nil {
		out.err = err
		return
	}
	out.fitness, out.ok = rep.NumFailed(), true
}

// resolve returns proposal i's outcome, blocking until it is available.
// Only the merge loop calls it, strictly in proposal order; that ordering
// is what makes the follower case safe (its leader has already been
// resolved) and race-free (the done-channel close publishes the worker's
// writes).
func (bv *batchValidator) resolve(i int) *valOutcome {
	out := &bv.outs[i]
	switch out.mode {
	case modeHit:
	case modeStore:
		// Answered by the persistent store at classification time; the
		// fitness is already in the slot and nothing was queued.
	case modeFollower:
		lead := &bv.outs[out.leader]
		if lead.ok {
			out.fitness, out.ok, out.hit = lead.fitness, true, true
		} else {
			// The leader's validation failed (quarantine, transient
			// exhaustion): the follower is validated independently, on the
			// merge goroutine against the parent's own verifier — which no
			// worker touches (workers use clones), so this is race-free.
			bv.validateOne(bv.ctx, i, bv.props[i].parent.iv)
		}
	default:
		if bv.lazy {
			bv.validateOne(bv.ctx, i, bv.props[i].parent.iv)
		} else {
			<-out.done
		}
	}
	return out
}

// close winds the batch down: outstanding workers are cancelled (their
// remaining validations return immediately) and joined, so no validation
// goroutine ever outlives its batch, and any parse memo installed on a
// long-lived verifier (lazy mode) is dropped.
func (bv *batchValidator) close() {
	if bv.cancel != nil {
		bv.cancel()
		bv.wg.Wait()
		bv.cancel = nil
	}
	for _, iv := range bv.batched {
		iv.EndBatch()
	}
	bv.batched = nil
}
