// Package journal is the durable session layer of the repair engine: an
// append-only write-ahead journal that makes long repair runs crash-safe.
//
// A session lives in one directory:
//
//	journaldir/
//	  wal.log          # length-prefixed, CRC-checksummed JSON records
//	  checkpoint.json  # the latest checkpoint, written atomically
//
// The WAL is a sequence of framed records:
//
//	[4-byte big-endian payload length][4-byte big-endian CRC-32C][payload]
//
// The payload is one JSON-encoded Record. Records carry monotonically
// increasing sequence numbers; the first record of a session is always a
// header. The engine appends candidate and iteration events as it works
// and a full Checkpoint (population, best-effort state, counters, RNG-free
// restart state) at a configurable cadence; a graceful end appends a
// terminal record. A SIGKILL, OOM-kill, or power cut leaves at worst a
// torn final frame, which the replayer detects (short frame or CRC
// mismatch) and recovers past: Replay returns the state at the last valid
// record, never a partially applied one.
//
// checkpoint.json duplicates the newest checkpoint record as a single
// framed record written with the temp-file + rename + fsync discipline, so
// recovery has a valid checkpoint even if the WAL's own checkpoint frame
// was the torn one.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Version is the on-disk format version written into headers.
const Version = 1

// maxRecordSize bounds a frame's declared payload length so a corrupt
// length prefix cannot make the replayer allocate gigabytes.
const maxRecordSize = 16 << 20

// castagnoli is the CRC-32C table (the WAL checksum polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Type discriminates WAL records.
type Type string

// Record types.
const (
	// TypeHeader opens a session: identity of the case and options.
	TypeHeader Type = "header"
	// TypeCandidate is one validated candidate and its fitness.
	TypeCandidate Type = "candidate"
	// TypeIteration closes one localize-fix-validate round.
	TypeIteration Type = "iteration"
	// TypeCheckpoint is a full engine-state snapshot at an iteration
	// boundary — the unit of recovery.
	TypeCheckpoint Type = "checkpoint"
	// TypeTerminal closes a session gracefully.
	TypeTerminal Type = "terminal"
	// TypeOwner records which fleet node ran (or adopted) the session for
	// this attempt. Pure provenance: replay collects owner records but they
	// never affect the resume state.
	TypeOwner Type = "owner"
)

// Record is the WAL envelope. Exactly one payload field matching Type is
// populated.
type Record struct {
	Seq  int  `json:"seq"`
	Type Type `json:"type"`

	Header     *Header     `json:"header,omitempty"`
	Candidate  *Candidate  `json:"candidate,omitempty"`
	Iteration  *Iteration  `json:"iteration,omitempty"`
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	Terminal   *Terminal   `json:"terminal,omitempty"`
	Owner      *Owner      `json:"owner,omitempty"`
}

// Header identifies the session. Resume refuses to continue a session
// whose digests do not match the case and options it was started with:
// replaying a journal against a different problem would silently produce
// garbage.
type Header struct {
	Version int    `json:"version"`
	Case    string `json:"case"`
	// CaseDigest hashes the topology, configurations, and intents.
	CaseDigest string `json:"caseDigest"`
	// OptionsDigest hashes every option that steers the search.
	OptionsDigest string `json:"optionsDigest"`
	Seed          int64  `json:"seed"`
}

// Candidate is one validated candidate event (observability; recovery
// state lives in checkpoints — except Digest, which additionally lets a
// resumed run warm its content-addressed fitness cache).
type Candidate struct {
	Iteration int    `json:"iteration"`
	Desc      string `json:"desc"`
	Fitness   int    `json:"fitness"`
	// Digest is the content digest of the candidate's post-edit
	// configuration set (empty in journals written before the evaluation
	// cache existed, or when caching is disabled).
	Digest string `json:"digest,omitempty"`
	// Refuted records that the static impact analysis answered this
	// candidate without simulation (its impact set was disjoint from
	// every intent's dependencies).
	Refuted bool `json:"refuted,omitempty"`
}

// Iteration mirrors the engine's per-iteration log line.
type Iteration struct {
	Iteration   int     `json:"iteration"`
	Generated   int     `json:"generated"`
	Validated   int     `json:"validated"`
	Kept        int     `json:"kept"`
	BestFitness int     `json:"bestFitness"`
	Top         []Score `json:"top,omitempty"`
}

// Score is one suspicious line in an iteration log (a dependency-free
// mirror of sbfl.Score).
type Score struct {
	Device string  `json:"device"`
	Line   int     `json:"line"`
	Susp   float64 `json:"susp"`
	Failed int     `json:"failed"`
	Passed int     `json:"passed"`
	Prior  float64 `json:"prior,omitempty"`
}

// Member is one preserved population member. Configurations are stored as
// raw line slices so restoration is byte-exact (text round-trips would
// drop trailing blank lines).
type Member struct {
	Configs map[string][]string `json:"configs"`
	Descs   []string            `json:"descs,omitempty"`
	Fitness int                 `json:"fitness"`
}

// BestEffort is the best configuration version seen so far.
type BestEffort struct {
	Fitness int                 `json:"fitness"`
	Configs map[string][]string `json:"configs"`
	Applied []string            `json:"applied,omitempty"`
}

// Counters snapshots the run's cumulative counters, so a resumed run's
// totals equal the uninterrupted run's.
type Counters struct {
	CandidatesValidated   int `json:"candidatesValidated"`
	PrefixSimulations     int `json:"prefixSimulations"`
	IntentChecks          int `json:"intentChecks"`
	TemplatesPrunedStatic int `json:"templatesPrunedStatic"`
	CandidatesPanicked    int `json:"candidatesPanicked"`
	CandidatesTimedOut    int `json:"candidatesTimedOut"`
	ValidationRetries     int `json:"validationRetries"`
	CacheHits             int `json:"cacheHits,omitempty"`
	CacheMisses           int `json:"cacheMisses,omitempty"`
	StaticallyRefuted     int `json:"staticallyRefuted,omitempty"`
	ImpactScoped          int `json:"impactScoped,omitempty"`
	ImpactBroad           int `json:"impactBroad,omitempty"`
	LeafDerivations       int `json:"leafDerivations,omitempty"`
	DeltaReused           int `json:"deltaReused,omitempty"`
	DeltaResimulated      int `json:"deltaResimulated,omitempty"`
	SimActivations        int `json:"simActivations,omitempty"`
}

// ErrorEvent is a flattened engine error (stacks and wrapped causes do not
// survive serialization; messages and counts do).
type ErrorEvent struct {
	Kind      string `json:"kind"`
	Op        string `json:"op"`
	Candidate string `json:"candidate,omitempty"`
	Message   string `json:"message,omitempty"`
}

// IterationLog mirrors one entry of the engine's Result.Logs.
type IterationLog struct {
	Iteration   int     `json:"iteration"`
	Generated   int     `json:"generated"`
	Validated   int     `json:"validated"`
	Kept        int     `json:"kept"`
	BestFitness int     `json:"bestFitness"`
	Top         []Score `json:"top,omitempty"`
}

// Checkpoint is a complete restart point at an iteration boundary. The
// engine derives every random stream from (seed, iteration) and
// (seed, version descs), so no RNG state needs to be stored: restoring the
// fields below and re-entering the loop at Iteration+1 reproduces the
// straight-through run exactly.
type Checkpoint struct {
	// Iteration is the last completed iteration (0 = only the base version
	// has been verified).
	Iteration int `json:"iteration"`
	// PrevFitness, Widen, BestEver, Stagnant are the loop-control state at
	// the top of iteration Iteration+1.
	PrevFitness int `json:"prevFitness"`
	Widen       int `json:"widen"`
	BestEver    int `json:"bestEver"`
	Stagnant    int `json:"stagnant"`

	BaseFailing       int `json:"baseFailing"`
	StaticDiagnostics int `json:"staticDiagnostics"`
	PriorSeededLines  int `json:"priorSeededLines"`

	Population []Member       `json:"population"`
	Best       *BestEffort    `json:"best,omitempty"`
	Counters   Counters       `json:"counters"`
	Logs       []IterationLog `json:"logs,omitempty"`
	Errors     []ErrorEvent   `json:"errors,omitempty"`
}

// Terminal closes a session. Terminations "deadline" and "canceled" leave
// the session resumable; "feasible", "exhausted", and "iteration-cap" do
// not (the search is over).
type Terminal struct {
	Termination string `json:"termination"`
	Feasible    bool   `json:"feasible"`
}

// Owner is one fleet-ownership record: which node claimed the session for
// which job attempt, and — after a lease-expiry adoption — which dead node
// it took the session from. The fleet appends one per attempt so a
// journal carries the custody chain of the job across node failures.
type Owner struct {
	// Node is the claiming node's advertised address.
	Node string `json:"node"`
	// Attempt is the job's attempt count when the node claimed it.
	Attempt int `json:"attempt,omitempty"`
	// AdoptedFrom names the down node this attempt adopted the job from
	// (empty for the original owner's attempts).
	AdoptedFrom string `json:"adoptedFrom,omitempty"`
}

// SyncMode selects the WAL's fsync discipline.
type SyncMode int

// Sync modes.
const (
	// SyncOnCheckpoint (the default) fsyncs the WAL only when appending
	// checkpoint and terminal records. Candidate/iteration events between
	// checkpoints are observability; recovery restarts from the last
	// checkpoint regardless, so their durability buys nothing.
	SyncOnCheckpoint SyncMode = iota
	// SyncAlways fsyncs every append (the durability tax acrbench's
	// resume experiment measures).
	SyncAlways
	// SyncNever leaves flushing to the OS (benchmark baseline only).
	SyncNever
)

// AppendHook observes every WAL append before it is written; n is the
// 1-based append count of this Writer. The chaos harness uses it to
// simulate crashes (by panicking or killing the process) at exact points.
// A non-nil error aborts the append.
type AppendHook func(n int, rec *Record) error

// Writer appends to a session's WAL. It is not safe for concurrent use;
// the engine is single-threaded.
type Writer struct {
	dir  string
	f    *os.File
	lock *os.File // held flock on LockPath(dir) for the Writer's lifetime
	seq  int
	n    int // appends through this Writer
	Sync SyncMode
	// Hook, when non-nil, runs before every append (chaos seam).
	Hook AppendHook
}

// ErrLocked reports that another live Writer — usually another process —
// holds a session directory's exclusive lock. Two appenders interleaving
// frames in one WAL would corrupt it unrecoverably, so Create and Resume
// refuse instead.
var ErrLocked = errors.New("journal: session directory locked by another writer")

// WALPath returns the session's WAL file path.
func WALPath(dir string) string { return filepath.Join(dir, "wal.log") }

// CheckpointPath returns the session's atomic-checkpoint file path.
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.json") }

// LockPath returns the session's exclusive lock file path.
func LockPath(dir string) string { return filepath.Join(dir, "lock") }

// acquireLock takes the session directory's exclusive flock. The lock
// belongs to the returned descriptor: it dies with the process (so a
// SIGKILL never wedges the directory) and conflicts with every other open
// of the same path, in-process or not.
func acquireLock(dir string) (*os.File, error) {
	l, err := os.OpenFile(LockPath(dir), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(l.Fd()); err != nil {
		l.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return l, nil
}

// Create starts a fresh session in dir (creating it as needed), truncating
// any previous session, and appends the header record. The directory's
// exclusive lock is held until Close (or process death): a second process
// appending to the same session would interleave frames, so Create fails
// with ErrLocked while another Writer is live.
func Create(dir string, hdr Header) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(WALPath(dir), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		lock.Close()
		return nil, err
	}
	os.Remove(CheckpointPath(dir)) // stale checkpoint from a prior session
	// Make the WAL's existence durable before its first record: a crash
	// right after Create must leave a replayable (if empty) directory, not
	// a directory whose WAL the filesystem forgot.
	if err := syncDir(dir); err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	w := &Writer{dir: dir, f: f, lock: lock}
	hdr.Version = Version
	if err := w.append(Record{Type: TypeHeader, Header: &hdr}, true); err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	return w, nil
}

// Resume reopens a session's WAL for appending after the given replayed
// session. The WAL is truncated to the end of the record the session
// resumes from — the last valid checkpoint (or the header when none
// exists) — discarding the torn tail and any events past the checkpoint:
// the resumed engine regenerates those events deterministically, so
// keeping them would double-log the replayed iterations. Like Create,
// Resume takes the directory's exclusive lock and fails with ErrLocked
// while another Writer is live.
func Resume(dir string, sess *Session) (*Writer, error) {
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(WALPath(dir), os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, err
	}
	fail := func(err error) (*Writer, error) {
		f.Close()
		lock.Close()
		return nil, err
	}
	if err := f.Truncate(sess.ResumeOffset); err != nil {
		return fail(err)
	}
	if _, err := f.Seek(sess.ResumeOffset, 0); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return &Writer{dir: dir, f: f, lock: lock, seq: sess.ResumeSeq}, nil
}

// append frames and writes one record, assigning its sequence number.
func (w *Writer) append(rec Record, sync bool) error {
	w.n++
	if w.Hook != nil {
		if err := w.Hook(w.n, &rec); err != nil {
			return err
		}
	}
	w.seq++
	rec.Seq = w.seq
	frame, err := encodeFrame(&rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	if w.Sync == SyncAlways || (sync && w.Sync != SyncNever) {
		return w.f.Sync()
	}
	return nil
}

// AppendCandidate journals one validated candidate.
func (w *Writer) AppendCandidate(c Candidate) error {
	return w.append(Record{Type: TypeCandidate, Candidate: &c}, false)
}

// AppendIteration journals one completed iteration.
func (w *Writer) AppendIteration(it Iteration) error {
	return w.append(Record{Type: TypeIteration, Iteration: &it}, false)
}

// AppendCheckpoint journals a full restart point: a WAL record (fsynced)
// plus an atomic rewrite of checkpoint.json.
func (w *Writer) AppendCheckpoint(cp Checkpoint) error {
	if err := w.append(Record{Type: TypeCheckpoint, Checkpoint: &cp}, true); err != nil {
		return err
	}
	frame, err := encodeFrame(&Record{Seq: w.seq, Type: TypeCheckpoint, Checkpoint: &cp})
	if err != nil {
		return err
	}
	return WriteFileAtomic(CheckpointPath(w.dir), frame, 0o644)
}

// AppendTerminal journals the session's graceful end.
func (w *Writer) AppendTerminal(t Terminal) error {
	return w.append(Record{Type: TypeTerminal, Terminal: &t}, true)
}

// AppendOwner journals a fleet-ownership claim (fsynced: a custody record
// that vanished in a crash would defeat its purpose).
func (w *Writer) AppendOwner(o Owner) error {
	return w.append(Record{Type: TypeOwner, Owner: &o}, true)
}

// Appends reports how many records this Writer has appended.
func (w *Writer) Appends() int { return w.n }

// Dir returns the session directory.
func (w *Writer) Dir() string { return w.dir }

// Close syncs and closes the WAL, releasing the session lock.
func (w *Writer) Close() error {
	defer w.unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abandon closes the WAL descriptor without syncing and releases the
// session lock — the state a process crash leaves behind (whatever reached
// the page cache survives, nothing is flushed). In-process crash
// simulations (internal/chaos) call it at the crash point so the directory
// is replayable and re-lockable exactly as it would be after a real kill.
func (w *Writer) Abandon() {
	w.f.Close()
	w.unlock()
}

func (w *Writer) unlock() {
	if w.lock != nil {
		w.lock.Close()
		w.lock = nil
	}
}

// encodeFrame renders one framed record.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return Frame(payload)
}

// Frame wraps an arbitrary payload in the WAL's on-disk framing —
// [4-byte big-endian length][4-byte big-endian CRC-32C][payload] — so other
// durable stores (internal/evalstore) share the journal's corruption
// detection instead of inventing a second format.
func Frame(payload []byte) ([]byte, error) {
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	return frame, nil
}

// Unframe verifies and strips exactly one frame: the buffer must hold one
// complete record and nothing else. It rejects short buffers, declared
// lengths that disagree with the buffer (a torn tail or appended garbage),
// and CRC mismatches (bit rot). The returned payload aliases b.
func Unframe(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("journal: frame of %d bytes is shorter than its header", len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > maxRecordSize {
		return nil, fmt.Errorf("journal: frame declares %d bytes, above the record limit", n)
	}
	if int(n) != len(b)-8 {
		return nil, fmt.Errorf("journal: frame declares %d payload bytes but holds %d", n, len(b)-8)
	}
	payload := b[8:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(b[4:8]); got != want {
		return nil, fmt.Errorf("journal: frame CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, nil
}

// WriteFileAtomic writes data to path with the temp-file + rename + fsync
// discipline: a crash at any point leaves either the old file or the new
// one, never a torn mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse to fsync directories; the rename itself is
	// still atomic there, so degrade silently.
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
