//go:build !unix

package journal

// flockExclusive is a no-op where flock is unavailable; the lock file still
// exists but mutual exclusion is advisory-only on such platforms.
func flockExclusive(uintptr) error { return nil }
