//go:build unix

package journal

import "syscall"

// flockExclusive takes a non-blocking exclusive flock on fd. flock locks
// belong to the open file description, so two Writers conflict even inside
// one process — exactly the property the session lock needs — and the
// kernel releases the lock when the descriptor dies with its process, so a
// SIGKILL'd session never wedges its directory.
func flockExclusive(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_EX|syscall.LOCK_NB)
}
