package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testHeader() Header {
	return Header{Case: "t", CaseDigest: "cd", OptionsDigest: "od", Seed: 7}
}

func testCheckpoint(iter int) Checkpoint {
	return Checkpoint{
		Iteration:   iter,
		PrevFitness: 3,
		Widen:       1,
		BestEver:    3,
		BaseFailing: 3,
		Population: []Member{{
			Configs: map[string][]string{"A": {"interface e0", " ip 10.0.0.1/31"}},
			Descs:   []string{"tmpl @ A:1"},
			Fitness: 2,
		}},
		Best: &BestEffort{Fitness: 2, Configs: map[string][]string{"A": {"x"}}},
		Logs: []IterationLog{{Iteration: 1, Generated: 4, Validated: 4, Kept: 1, BestFitness: 2,
			Top: []Score{{Device: "A", Line: 1, Susp: 0.5, Failed: 1, Passed: 2}}}},
	}
}

func writeSession(t *testing.T, dir string, iters int, terminal *Terminal) {
	t.Helper()
	w, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= iters; i++ {
		if err := w.AppendCandidate(Candidate{Iteration: i, Desc: "c", Fitness: 2}); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendIteration(Iteration{Iteration: i, Validated: 1, BestFitness: 2}); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendCheckpoint(testCheckpoint(i)); err != nil {
			t.Fatal(err)
		}
	}
	if terminal != nil {
		if err := w.AppendTerminal(*terminal); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 3, &Terminal{Termination: "feasible", Feasible: true})
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Header == nil || sess.Header.Case != "t" || sess.Header.Seed != 7 {
		t.Fatalf("header = %+v", sess.Header)
	}
	if sess.Truncated {
		t.Fatalf("clean WAL reported truncated: %s", sess.TruncatedReason)
	}
	if sess.Checkpoint == nil || sess.Checkpoint.Iteration != 3 {
		t.Fatalf("checkpoint = %+v", sess.Checkpoint)
	}
	if got := sess.Checkpoint.Population[0].Configs["A"]; len(got) != 2 || got[0] != "interface e0" {
		t.Fatalf("population configs = %q", got)
	}
	if len(sess.Iterations) != 3 {
		t.Fatalf("iterations = %d", len(sess.Iterations))
	}
	if sess.Terminal == nil || !sess.Terminal.Feasible {
		t.Fatalf("terminal = %+v", sess.Terminal)
	}
	if sess.Resumable() {
		t.Fatal("feasible session must not be resumable")
	}
	// 1 header + 3*(candidate+iteration+checkpoint) + terminal.
	if sess.Records != 11 {
		t.Fatalf("records = %d", sess.Records)
	}
}

func TestResumableTerminations(t *testing.T) {
	for term, want := range map[string]bool{
		"deadline": true, "canceled": true,
		"feasible": false, "exhausted": false, "iteration-cap": false,
	} {
		s := &Session{Terminal: &Terminal{Termination: term}}
		if s.Resumable() != want {
			t.Errorf("Resumable(%q) = %v, want %v", term, !want, want)
		}
	}
	if !(&Session{}).Resumable() {
		t.Error("crashed session (no terminal) must be resumable")
	}
}

// TestTornTailRecovery covers the crash shapes a SIGKILL can leave: a
// frame cut anywhere, a corrupted checksum, garbage appended.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 2, nil)
	clean, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayBytes(clean); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"cut mid-frame":            func(b []byte) []byte { return b[:len(b)-5] },
		"cut deep into last frame": func(b []byte) []byte { return b[:len(b)-40] },
		"flipped payload bit": func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[len(c)-2] ^= 0x40
			return c
		},
		"garbage appended": func(b []byte) []byte {
			return append(append([]byte{}, b...), []byte("\x00\x00\x01\x00junkjunkjunk")...)
		},
		"huge length prefix appended": func(b []byte) []byte {
			tail := make([]byte, 8)
			binary.BigEndian.PutUint32(tail, 1<<30)
			return append(append([]byte{}, b...), tail...)
		},
	}
	for name, mutate := range cases {
		sess, err := ReplayBytes(mutate(clean))
		if err != nil {
			t.Errorf("%s: replay failed entirely: %v", name, err)
			continue
		}
		if !sess.Truncated {
			t.Errorf("%s: corruption not detected", name)
		}
		if sess.Checkpoint == nil {
			t.Errorf("%s: lost all checkpoints", name)
			continue
		}
		// The last intact record before each mutation is iteration-2
		// state or later — never an invented one.
		if got := sess.Checkpoint.Iteration; got != 1 && got != 2 {
			t.Errorf("%s: recovered checkpoint iteration = %d", name, got)
		}
	}
}

// TestCheckpointFileLeadsWAL: when the WAL's checkpoint frame is the torn
// one, the atomically written checkpoint.json still carries it.
func TestCheckpointFileLeadsWAL(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 2, nil)
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the WAL back to before the iteration-2 checkpoint frame while
	// leaving checkpoint.json (which holds iteration 2) in place.
	if err := os.Truncate(WALPath(dir), sess.ResumeOffset-10); err != nil {
		t.Fatal(err)
	}
	recovered, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Truncated {
		t.Error("truncation not detected")
	}
	if recovered.Checkpoint == nil || recovered.Checkpoint.Iteration != 2 {
		t.Fatalf("checkpoint.json not consulted: %+v", recovered.Checkpoint)
	}
}

// TestStaleCheckpointFileIgnored: a checkpoint.json older than the WAL's
// newest checkpoint must never roll the session backward.
func TestStaleCheckpointFileIgnored(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 1, nil)
	stale, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	writeSession(t, dir, 3, nil)
	if err := os.WriteFile(CheckpointPath(dir), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Checkpoint.Iteration != 3 {
		t.Fatalf("stale checkpoint.json won: iteration %d", sess.Checkpoint.Iteration)
	}
}

func TestResumeTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 2, nil)
	// Simulate a crash mid-append.
	f, err := os.OpenFile(WALPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\x00\x00\x00\x50torn"))
	f.Close()
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Truncated {
		t.Fatal("torn tail not detected")
	}
	w, err := Resume(dir, sess)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendIteration(Iteration{Iteration: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCheckpoint(testCheckpoint(3)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendTerminal(Terminal{Termination: "feasible", Feasible: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Truncated {
		t.Fatalf("resumed WAL still torn: %s", final.TruncatedReason)
	}
	if final.Checkpoint.Iteration != 3 || final.Terminal == nil {
		t.Fatalf("resumed session state: cp=%+v terminal=%+v", final.Checkpoint, final.Terminal)
	}
}

func TestReplayNoSession(t *testing.T) {
	if _, err := Replay(t.TempDir()); err != ErrNoSession {
		t.Fatalf("empty dir: err = %v, want ErrNoSession", err)
	}
	for name, data := range map[string][]byte{
		"empty":            {},
		"garbage":          []byte("not a journal at all"),
		"torn before done": {0x00, 0x00, 0x01, 0x00, 0xAA},
	} {
		if _, err := ReplayBytes(data); err != ErrNoSession {
			t.Errorf("%s: err = %v, want ErrNoSession", name, err)
		}
	}
}

func TestAtomicCheckpointFileIsFramed(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 1, nil)
	frame, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec, _, ok := decodeFrame(frame)
	if !ok || rec.Type != TypeCheckpoint || rec.Checkpoint == nil {
		t.Fatalf("checkpoint.json is not a valid framed checkpoint record")
	}
	// A flipped bit must be detected, never deserialized.
	frame[len(frame)-3] ^= 0x10
	if _, _, ok := decodeFrame(frame); ok {
		t.Fatal("corrupt checkpoint.json passed CRC")
	}
	// No temp files left behind by the atomic write.
	matches, _ := filepath.Glob(filepath.Join(dir, "checkpoint.json.tmp*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestCreateTruncatesPriorSession(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 3, &Terminal{Termination: "feasible", Feasible: true})
	writeSession(t, dir, 1, nil)
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Terminal != nil || sess.Checkpoint.Iteration != 1 {
		t.Fatalf("prior session leaked through: %+v", sess)
	}
}

func TestSequenceGapDetected(t *testing.T) {
	dir := t.TempDir()
	writeSession(t, dir, 1, nil)
	clean, _ := os.ReadFile(WALPath(dir))
	sess, _ := ReplayBytes(clean)
	// Re-frame a record with a skipped sequence number and append it.
	frame, err := encodeFrame(&Record{Seq: sess.Records + 5, Type: TypeIteration, Iteration: &Iteration{Iteration: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// encodeFrame is used via append normally; here build the raw frame
	// with the forged seq by marshaling directly.
	mutated := append(append([]byte{}, clean...), frame...)
	got, err := ReplayBytes(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated || !bytes.Contains([]byte(got.TruncatedReason), []byte("sequence")) {
		t.Fatalf("sequence gap not flagged: %+v", got.TruncatedReason)
	}
}

func TestSessionLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	// A second Create on a live session must refuse: two appenders would
	// interleave frames in one WAL.
	if _, err := Create(dir, testHeader()); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Create: got %v, want ErrLocked", err)
	}
	// Resume must refuse for the same reason.
	if err := w.AppendCheckpoint(testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir, sess); !errors.Is(err, ErrLocked) {
		t.Fatalf("Resume while locked: got %v, want ErrLocked", err)
	}
	// Close releases the lock; the directory is writable again.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Resume(dir, sess)
	if err != nil {
		t.Fatalf("Resume after Close: %v", err)
	}
	w2.Close()
}

func TestAbandonReleasesLock(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCheckpoint(testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	w.Abandon() // the simulated-crash path: no sync, lock released
	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Checkpoint == nil || sess.Checkpoint.Iteration != 1 {
		t.Fatalf("checkpoint lost across Abandon: %+v", sess.Checkpoint)
	}
	w2, err := Resume(dir, sess)
	if err != nil {
		t.Fatalf("Resume after Abandon: %v", err)
	}
	w2.Close()
}

// TestOwnerRecordsReplay covers the fleet custody chain: owner records
// round-trip through replay in order, survive resume truncation when they
// precede the checkpoint, and never affect the resume state itself.
func TestOwnerRecordsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendOwner(Owner{Node: "n1:7001", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCheckpoint(testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sess, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Truncated {
		t.Fatalf("owner record truncated the session: %s", sess.TruncatedReason)
	}
	if len(sess.Owners) != 1 || sess.Owners[0].Node != "n1:7001" {
		t.Fatalf("owners = %+v", sess.Owners)
	}
	if sess.Checkpoint == nil || sess.Checkpoint.Iteration != 1 {
		t.Fatalf("checkpoint = %+v", sess.Checkpoint)
	}

	// An adopting node resumes and appends its own claim; replaying again
	// yields the custody chain oldest-first.
	w2, err := Resume(dir, sess)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendOwner(Owner{Node: "n2:7002", Attempt: 2, AdoptedFrom: "n1:7001"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	sess2, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess2.Owners) != 2 || sess2.Owners[1].AdoptedFrom != "n1:7001" {
		t.Fatalf("custody chain = %+v", sess2.Owners)
	}
	// Provenance only: the resume point is still the checkpoint, not the
	// owner record that follows it... owner records after the checkpoint
	// are discarded by the next resume like any other event.
	if sess2.Checkpoint == nil || sess2.Checkpoint.Iteration != 1 {
		t.Fatalf("checkpoint after adoption = %+v", sess2.Checkpoint)
	}
	if sess2.ResumeSeq != sess.ResumeSeq {
		t.Fatalf("owner record moved the resume point: %d != %d", sess2.ResumeSeq, sess.ResumeSeq)
	}
}
