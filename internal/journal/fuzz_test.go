package journal

import (
	"os"
	"testing"
)

// FuzzJournalReplay asserts the replayer's recovery contract on arbitrary
// bytes: it never panics, and it never yields an invalid session — every
// successful replay has a header, a structurally valid checkpoint (when
// one is present), and a resume offset on a record boundary inside the
// input.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed WAL and mutations of it.
	dir := f.TempDir()
	w, err := Create(dir, Header{Case: "fuzz", CaseDigest: "c", OptionsDigest: "o", Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	w.AppendCandidate(Candidate{Iteration: 1, Desc: "d", Fitness: 1})
	w.AppendIteration(Iteration{Iteration: 1, Validated: 1})
	w.AppendCheckpoint(Checkpoint{
		Iteration: 1, PrevFitness: 1, Widen: 1, BestEver: 1, BaseFailing: 1,
		Population: []Member{{Configs: map[string][]string{"A": {"line"}}, Fitness: 1}},
	})
	w.AppendTerminal(Terminal{Termination: "feasible", Feasible: true})
	w.Close()
	clean, err := os.ReadFile(WALPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-7])
	f.Add(append(clean, clean...))
	f.Add([]byte{})
	f.Add([]byte("\x00\x00\x00\x05\xff\xff\xff\xff{}j"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sess, err := ReplayBytes(data)
		if err != nil {
			if sess != nil {
				t.Fatal("error with non-nil session")
			}
			return
		}
		if sess.Header == nil {
			t.Fatal("session without header")
		}
		if sess.Header.Version != Version {
			t.Fatalf("accepted header version %d", sess.Header.Version)
		}
		if cp := sess.Checkpoint; cp != nil && !validCheckpoint(cp) {
			t.Fatalf("invalid checkpoint accepted: %+v", cp)
		}
		if sess.ResumeOffset < 0 || sess.ResumeOffset > int64(len(data)) {
			t.Fatalf("resume offset %d outside input of %d bytes", sess.ResumeOffset, len(data))
		}
		if sess.ResumeSeq < 1 || sess.ResumeSeq > sess.Records {
			t.Fatalf("resume seq %d with %d records", sess.ResumeSeq, sess.Records)
		}
		// The resume offset must be a replayable prefix ending in the
		// same place: truncating there and replaying again is stable
		// (recovery past a torn tail converges, never loops).
		again, err := ReplayBytes(data[:sess.ResumeOffset])
		if err != nil {
			t.Fatalf("resume prefix does not replay: %v", err)
		}
		if again.Truncated {
			t.Fatalf("resume prefix still torn: %s", again.TruncatedReason)
		}
		if again.ResumeOffset != sess.ResumeOffset || again.ResumeSeq != sess.ResumeSeq {
			t.Fatalf("recovery not convergent: %d/%d vs %d/%d",
				again.ResumeOffset, again.ResumeSeq, sess.ResumeOffset, sess.ResumeSeq)
		}
	})
}
