package topo

import (
	"fmt"
	"net/netip"
)

// ridFor produces a deterministic router ID from an ordinal: 1.0.0.1,
// 1.0.0.2, ..., 1.0.1.0, ... The example network depends on A having the
// lowest router ID so that best-path ties break toward A (see the worked
// incident in the scenario package).
func ridFor(ordinal int) netip.Addr {
	ord := uint32(ordinal)
	return netip.AddrFrom4([4]byte{1, byte(ord >> 16), byte(ord >> 8), byte(ord)})
}

// ExampleGraph builds the structural part of the Figure 2 network: four
// backbone routers A, B, C, S; PoPs attached to A and B; a DCN attached to
// S. withSC controls whether the (initially absent) S–C session's link
// exists — the incident begins when it is added.
//
// Originated prefixes follow the paper: PoP-A originates 10.70.0.0/16,
// PoP-B originates 10.0.0.0/16 (the flapping prefix), and DCN-S originates
// 20.0.0.0/16.
func ExampleGraph(withSC bool) *Network {
	n := New("figure2")
	n.AddNode("A", Backbone, 65001, ridFor(1))
	n.AddNode("B", Backbone, 65002, ridFor(2))
	n.AddNode("C", Backbone, 65003, ridFor(3))
	n.AddNode("S", Backbone, 65004, ridFor(4))
	popA := n.AddNode("PoP-A", PoP, 64601, ridFor(5))
	popA.Originates = []netip.Prefix{netip.MustParsePrefix("10.70.0.0/16")}
	popB := n.AddNode("PoP-B", PoP, 64602, ridFor(6))
	popB.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}
	dcnS := n.AddNode("DCN-S", DCN, 64701, ridFor(7))
	dcnS.Originates = []netip.Prefix{netip.MustParsePrefix("20.0.0.0/16")}

	n.Connect("A", "B")
	n.Connect("B", "C")
	n.Connect("A", "S")
	if withSC {
		n.Connect("C", "S")
	}
	n.Connect("PoP-A", "A")
	n.Connect("PoP-B", "B")
	n.Connect("DCN-S", "S")
	return n
}

// FatTreeOpts parameterizes FatTree.
type FatTreeOpts struct {
	// K is the fat-tree arity; must be even and >= 2. The graph has
	// (K/2)^2 cores, K pods with K/2 spines and K/2 leaves each.
	K int
	// RackPrefixBase is the first /16 used for leaf rack prefixes;
	// leaf i originates 10.(base+i).0.0/16. Default base 0.
	RackPrefixBase int
}

// FatTree builds a K-ary fat-tree graph with leaf nodes originating one /16
// each. ASNs: cores 65000+, spines 64000+, leaves 63000+ (eBGP everywhere,
// as in large DCNs).
func FatTree(opts FatTreeOpts) *Network {
	k := opts.K
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree K must be even and >= 2, got %d", k))
	}
	n := New(fmt.Sprintf("fattree-k%d", k))
	half := k / 2
	ord := 1
	// Core layer: half*half nodes.
	cores := make([]string, 0, half*half)
	for i := 0; i < half*half; i++ {
		name := fmt.Sprintf("core%d", i)
		n.AddNode(name, Core, uint32(65000+i), ridFor(ord))
		ord++
		cores = append(cores, name)
	}
	leafIdx := 0
	for pod := 0; pod < k; pod++ {
		spines := make([]string, 0, half)
		for s := 0; s < half; s++ {
			name := fmt.Sprintf("spine%d-%d", pod, s)
			n.AddNode(name, Spine, uint32(64000+pod*half+s), ridFor(ord))
			ord++
			spines = append(spines, name)
		}
		for l := 0; l < half; l++ {
			name := fmt.Sprintf("leaf%d-%d", pod, l)
			leaf := n.AddNode(name, Leaf, uint32(63000+pod*half+l), ridFor(ord))
			ord++
			leaf.Originates = []netip.Prefix{netip.MustParsePrefix(
				fmt.Sprintf("10.%d.0.0/16", opts.RackPrefixBase+leafIdx))}
			leafIdx++
			for _, s := range spines {
				n.Connect(name, s)
			}
		}
		// Spine s of every pod connects to cores [s*half, (s+1)*half).
		for s, spine := range spines {
			for c := 0; c < half; c++ {
				n.Connect(spine, cores[s*half+c])
			}
		}
	}
	return n
}

// BackboneOpts parameterizes Backbone.
type BackboneOpts struct {
	// Routers is the number of backbone routers, connected in a ring plus
	// chords every Chord hops (Chord 0 disables chords).
	Routers int
	Chord   int
	// PoPs is the number of PoP stubs, attached round-robin to backbone
	// routers; each originates 10.(100+i).0.0/16.
	PoPs int
	// DCNs is the number of DCN stubs, attached round-robin (offset) to
	// backbone routers; each originates 20.(i).0.0/16.
	DCNs int
}

// BackboneMesh builds a wide-area backbone: a ring of routers with optional
// chords, and PoP/DCN stubs hanging off them. This mirrors the paper's
// setting (backbone routers interconnecting PoPs and DCNs).
func BackboneMesh(opts BackboneOpts) *Network {
	if opts.Routers < 3 {
		panic("topo: backbone needs at least 3 routers")
	}
	n := New(fmt.Sprintf("backbone-%d", opts.Routers))
	ord := 1
	names := make([]string, opts.Routers)
	for i := 0; i < opts.Routers; i++ {
		names[i] = fmt.Sprintf("bb%d", i)
		n.AddNode(names[i], Backbone, uint32(65001+i), ridFor(ord))
		ord++
	}
	for i := 0; i < opts.Routers; i++ {
		n.Connect(names[i], names[(i+1)%opts.Routers])
	}
	if opts.Chord > 1 {
		for i := 0; i < opts.Routers; i += opts.Chord {
			j := (i + opts.Routers/2) % opts.Routers
			if j != i && j != (i+1)%opts.Routers && i != (j+1)%opts.Routers {
				n.Connect(names[i], names[j])
			}
		}
	}
	for i := 0; i < opts.PoPs; i++ {
		name := fmt.Sprintf("pop%d", i)
		p := n.AddNode(name, PoP, uint32(64600+i), ridFor(ord))
		ord++
		p.Originates = []netip.Prefix{netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", 100+i))}
		n.Connect(name, names[i%opts.Routers])
	}
	for i := 0; i < opts.DCNs; i++ {
		name := fmt.Sprintf("dcn%d", i)
		d := n.AddNode(name, DCN, uint32(64700+i), ridFor(ord))
		ord++
		d.Originates = []netip.Prefix{netip.MustParsePrefix(fmt.Sprintf("20.%d.0.0/16", i))}
		n.Connect(name, names[(i+opts.Routers/2)%opts.Routers])
	}
	return n
}
