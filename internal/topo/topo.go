// Package topo models network structure: routers, interfaces, point-to-point
// links, and deterministic address assignment. It is purely structural —
// configurations are generated on top of it by the scenario package — and
// provides the graph generators used throughout the evaluation: the
// four-router backbone of Figure 2, fat-tree data centers, and backbone
// meshes.
package topo

import (
	"fmt"
	"net/netip"
	"sort"
)

// Kind classifies a node's role. Roles matter to the paper: "devices in
// DCNs are grouped into several roles, and devices with the same role often
// have similar configurations" (§6), which is what makes template-based
// repair plausible.
type Kind uint8

// Node roles.
const (
	Backbone Kind = iota // backbone/core router
	PoP                  // point-of-presence edge (stub that originates prefixes)
	DCN                  // data-center edge (stub that originates prefixes)
	Spine                // fat-tree spine
	Leaf                 // fat-tree leaf (originates rack prefixes)
	Core                 // fat-tree core
)

// String names the role.
func (k Kind) String() string {
	switch k {
	case Backbone:
		return "backbone"
	case PoP:
		return "pop"
	case DCN:
		return "dcn"
	case Spine:
		return "spine"
	case Leaf:
		return "leaf"
	case Core:
		return "core"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is a router.
type Node struct {
	Name     string
	Kind     Kind
	ASN      uint32
	RouterID netip.Addr
	// Originates lists the prefixes this node is responsible for
	// originating into BGP (stub networks behind it).
	Originates []netip.Prefix
	// Ifaces maps interface name to its assigned address (with the /30
	// prefix length of the link subnet).
	Ifaces map[string]netip.Prefix
}

// Endpoint names one side of a link.
type Endpoint struct {
	Node  string
	Iface string
}

// Link is a point-to-point link with its /30 subnet.
type Link struct {
	A, B   Endpoint
	Subnet netip.Prefix
	// AddrA and AddrB are the host addresses assigned to each side.
	AddrA, AddrB netip.Addr
}

// Network is a set of nodes and links with consistent addressing.
type Network struct {
	Name  string
	nodes map[string]*Node
	order []string // insertion order, for deterministic iteration
	Links []*Link

	linkSeq int // next /30 block index
}

// New returns an empty network.
func New(name string) *Network {
	return &Network{Name: name, nodes: map[string]*Node{}}
}

// AddNode creates a node. ASN and RouterID must be unique per node; the
// generators guarantee this, and Validate checks it.
func (n *Network) AddNode(name string, kind Kind, asn uint32, routerID netip.Addr) *Node {
	if _, ok := n.nodes[name]; ok {
		panic(fmt.Sprintf("topo: duplicate node %q", name))
	}
	nd := &Node{Name: name, Kind: kind, ASN: asn, RouterID: routerID, Ifaces: map[string]netip.Prefix{}}
	n.nodes[name] = nd
	n.order = append(n.order, name)
	return nd
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Nodes returns all nodes in insertion order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, len(n.order))
	for i, name := range n.order {
		out[i] = n.nodes[name]
	}
	return out
}

// NumNodes reports the node count.
func (n *Network) NumNodes() int { return len(n.order) }

// linkBase is the pool point-to-point subnets are carved from. It is
// disjoint from the prefix pools scenarios originate (10/8, 20/8) so that
// infrastructure addresses never collide with customer prefixes.
var linkBase = netip.MustParseAddr("172.16.0.0")

// Connect links two nodes, allocating the next /30 and the next free
// interface name (ethN) on each side. It returns the created link.
func (n *Network) Connect(a, b string) *Link {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		panic(fmt.Sprintf("topo: Connect(%q, %q): unknown node", a, b))
	}
	block := n.linkSeq
	n.linkSeq++
	base4 := linkBase.As4()
	off := uint32(base4[0])<<24 | uint32(base4[1])<<16 | uint32(base4[2])<<8 | uint32(base4[3])
	off += uint32(block * 4)
	subnetAddr := netip.AddrFrom4([4]byte{byte(off >> 24), byte(off >> 16), byte(off >> 8), byte(off)})
	subnet := netip.PrefixFrom(subnetAddr, 30)
	addrA := netip.AddrFrom4([4]byte{byte(off >> 24), byte(off >> 16), byte(off >> 8), byte(off + 1)})
	addrB := netip.AddrFrom4([4]byte{byte(off >> 24), byte(off >> 16), byte(off >> 8), byte(off + 2)})
	ifA := fmt.Sprintf("eth%d", len(na.Ifaces))
	ifB := fmt.Sprintf("eth%d", len(nb.Ifaces))
	na.Ifaces[ifA] = netip.PrefixFrom(addrA, 30)
	nb.Ifaces[ifB] = netip.PrefixFrom(addrB, 30)
	l := &Link{
		A: Endpoint{Node: a, Iface: ifA}, B: Endpoint{Node: b, Iface: ifB},
		Subnet: subnet, AddrA: addrA, AddrB: addrB,
	}
	n.Links = append(n.Links, l)
	return l
}

// Neighbors returns, for the named node, every (link, local address, peer
// node, peer address) adjacency, in link order.
type Adjacency struct {
	Link      *Link
	Iface     string
	LocalAddr netip.Addr
	PeerNode  string
	PeerIface string
	PeerAddr  netip.Addr
}

// Adjacencies lists the adjacencies of node name.
func (n *Network) Adjacencies(name string) []Adjacency {
	var out []Adjacency
	for _, l := range n.Links {
		switch name {
		case l.A.Node:
			out = append(out, Adjacency{Link: l, Iface: l.A.Iface, LocalAddr: l.AddrA, PeerNode: l.B.Node, PeerIface: l.B.Iface, PeerAddr: l.AddrB})
		case l.B.Node:
			out = append(out, Adjacency{Link: l, Iface: l.B.Iface, LocalAddr: l.AddrB, PeerNode: l.A.Node, PeerIface: l.A.Iface, PeerAddr: l.AddrA})
		}
	}
	return out
}

// NodeByAddr returns the node owning the given interface address, or nil.
func (n *Network) NodeByAddr(a netip.Addr) *Node {
	for _, l := range n.Links {
		if l.AddrA == a {
			return n.nodes[l.A.Node]
		}
		if l.AddrB == a {
			return n.nodes[l.B.Node]
		}
	}
	return nil
}

// OriginOf returns the node originating the longest-matching prefix that
// covers addr, or nil. Used to map a test packet's addresses to edge nodes.
func (n *Network) OriginOf(addr netip.Addr) *Node {
	var best *Node
	bestBits := -1
	for _, name := range n.order {
		nd := n.nodes[name]
		for _, p := range nd.Originates {
			if p.Contains(addr) && p.Bits() > bestBits {
				best, bestBits = nd, p.Bits()
			}
		}
	}
	return best
}

// OriginOfPrefix returns the node originating exactly prefix p, or nil.
func (n *Network) OriginOfPrefix(p netip.Prefix) *Node {
	for _, name := range n.order {
		nd := n.nodes[name]
		for _, op := range nd.Originates {
			if op == p {
				return nd
			}
		}
	}
	return nil
}

// AllOriginated returns every originated prefix in the network, sorted.
func (n *Network) AllOriginated() []netip.Prefix {
	var out []netip.Prefix
	for _, name := range n.order {
		out = append(out, n.nodes[name].Originates...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Validate checks structural invariants: unique ASNs and router IDs,
// links referencing known nodes, no self-links.
func (n *Network) Validate() error {
	asns := map[uint32]string{}
	rids := map[netip.Addr]string{}
	for _, name := range n.order {
		nd := n.nodes[name]
		if prev, ok := asns[nd.ASN]; ok {
			return fmt.Errorf("topo %s: ASN %d reused by %s and %s", n.Name, nd.ASN, prev, name)
		}
		asns[nd.ASN] = name
		if prev, ok := rids[nd.RouterID]; ok {
			return fmt.Errorf("topo %s: router-id %s reused by %s and %s", n.Name, nd.RouterID, prev, name)
		}
		rids[nd.RouterID] = name
	}
	for _, l := range n.Links {
		if n.nodes[l.A.Node] == nil || n.nodes[l.B.Node] == nil {
			return fmt.Errorf("topo %s: link %v references unknown node", n.Name, l)
		}
		if l.A.Node == l.B.Node {
			return fmt.Errorf("topo %s: self-link on %s", n.Name, l.A.Node)
		}
	}
	return nil
}
