package topo

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestConnectAssignsDistinctSubnets(t *testing.T) {
	n := New("t")
	n.AddNode("a", Backbone, 1, ridFor(1))
	n.AddNode("b", Backbone, 2, ridFor(2))
	n.AddNode("c", Backbone, 3, ridFor(3))
	l1 := n.Connect("a", "b")
	l2 := n.Connect("b", "c")
	if l1.Subnet == l2.Subnet {
		t.Errorf("links share subnet %v", l1.Subnet)
	}
	if !l1.Subnet.Contains(l1.AddrA) || !l1.Subnet.Contains(l1.AddrB) {
		t.Errorf("addresses %v %v outside subnet %v", l1.AddrA, l1.AddrB, l1.Subnet)
	}
	if l1.AddrA == l1.AddrB {
		t.Error("link endpoints share an address")
	}
}

func TestConnectInterfaceNaming(t *testing.T) {
	n := New("t")
	n.AddNode("a", Backbone, 1, ridFor(1))
	n.AddNode("b", Backbone, 2, ridFor(2))
	n.AddNode("c", Backbone, 3, ridFor(3))
	n.Connect("a", "b")
	l := n.Connect("a", "c")
	if l.A.Iface != "eth1" {
		t.Errorf("second interface on a = %q, want eth1", l.A.Iface)
	}
	if l.B.Iface != "eth0" {
		t.Errorf("first interface on c = %q, want eth0", l.B.Iface)
	}
}

func TestAdjacencies(t *testing.T) {
	n := ExampleGraph(true)
	adj := n.Adjacencies("A")
	peers := map[string]bool{}
	for _, a := range adj {
		peers[a.PeerNode] = true
		if got := n.NodeByAddr(a.PeerAddr); got == nil || got.Name != a.PeerNode {
			t.Errorf("NodeByAddr(%v) = %v, want %s", a.PeerAddr, got, a.PeerNode)
		}
		if got := n.NodeByAddr(a.LocalAddr); got == nil || got.Name != "A" {
			t.Errorf("NodeByAddr(%v) = %v, want A", a.LocalAddr, got)
		}
	}
	for _, want := range []string{"B", "S", "PoP-A"} {
		if !peers[want] {
			t.Errorf("A missing adjacency to %s (got %v)", want, peers)
		}
	}
	if peers["C"] {
		t.Error("A should not be adjacent to C")
	}
}

func TestExampleGraphSC(t *testing.T) {
	without := ExampleGraph(false)
	with := ExampleGraph(true)
	if len(with.Links) != len(without.Links)+1 {
		t.Errorf("withSC adds %d links, want 1", len(with.Links)-len(without.Links))
	}
	found := false
	for _, l := range with.Links {
		if (l.A.Node == "C" && l.B.Node == "S") || (l.A.Node == "S" && l.B.Node == "C") {
			found = true
		}
	}
	if !found {
		t.Error("S–C link missing from withSC graph")
	}
	if err := with.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestExampleGraphOrigins(t *testing.T) {
	n := ExampleGraph(true)
	cases := []struct{ prefix, origin string }{
		{"10.70.0.0/16", "PoP-A"},
		{"10.0.0.0/16", "PoP-B"},
		{"20.0.0.0/16", "DCN-S"},
	}
	for _, tc := range cases {
		nd := n.OriginOfPrefix(netip.MustParsePrefix(tc.prefix))
		if nd == nil || nd.Name != tc.origin {
			t.Errorf("OriginOfPrefix(%s) = %v, want %s", tc.prefix, nd, tc.origin)
		}
	}
	if got := n.OriginOf(netip.MustParseAddr("10.0.3.7")); got == nil || got.Name != "PoP-B" {
		t.Errorf("OriginOf(10.0.3.7) = %v, want PoP-B", got)
	}
	if got := len(n.AllOriginated()); got != 3 {
		t.Errorf("AllOriginated count = %d, want 3", got)
	}
}

func TestOriginOfLongestMatch(t *testing.T) {
	n := New("t")
	a := n.AddNode("a", Leaf, 1, ridFor(1))
	a.Originates = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}
	b := n.AddNode("b", Leaf, 2, ridFor(2))
	b.Originates = []netip.Prefix{netip.MustParsePrefix("10.5.0.0/16")}
	if got := n.OriginOf(netip.MustParseAddr("10.5.1.1")); got.Name != "b" {
		t.Errorf("longest match = %s, want b", got.Name)
	}
	if got := n.OriginOf(netip.MustParseAddr("10.6.1.1")); got.Name != "a" {
		t.Errorf("fallback = %s, want a", got.Name)
	}
	if got := n.OriginOf(netip.MustParseAddr("99.0.0.1")); got != nil {
		t.Errorf("no-match = %v, want nil", got)
	}
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		n := FatTree(FatTreeOpts{K: k})
		if err := n.Validate(); err != nil {
			t.Fatalf("k=%d: Validate: %v", k, err)
		}
		half := k / 2
		var cores, spines, leaves int
		for _, nd := range n.Nodes() {
			switch nd.Kind {
			case Core:
				cores++
			case Spine:
				spines++
			case Leaf:
				leaves++
				if len(nd.Originates) != 1 {
					t.Errorf("k=%d: leaf %s originates %d prefixes, want 1", k, nd.Name, len(nd.Originates))
				}
			}
		}
		if cores != half*half {
			t.Errorf("k=%d: %d cores, want %d", k, cores, half*half)
		}
		if spines != k*half || leaves != k*half {
			t.Errorf("k=%d: spines=%d leaves=%d, want %d each", k, spines, leaves, k*half)
		}
		wantLinks := k * half * half * 2 // leaf-spine + spine-core
		if len(n.Links) != wantLinks {
			t.Errorf("k=%d: %d links, want %d", k, len(n.Links), wantLinks)
		}
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FatTree(K=3) did not panic")
		}
	}()
	FatTree(FatTreeOpts{K: 3})
}

func TestBackboneStructure(t *testing.T) {
	n := BackboneMesh(BackboneOpts{Routers: 6, Chord: 2, PoPs: 3, DCNs: 2})
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var bbs, pops, dcns int
	for _, nd := range n.Nodes() {
		switch nd.Kind {
		case Backbone:
			bbs++
		case PoP:
			pops++
			if len(nd.Originates) != 1 {
				t.Errorf("pop %s originates %d, want 1", nd.Name, len(nd.Originates))
			}
		case DCN:
			dcns++
		}
	}
	if bbs != 6 || pops != 3 || dcns != 2 {
		t.Errorf("counts = %d/%d/%d, want 6/3/2", bbs, pops, dcns)
	}
}

func TestValidateCatchesDuplicateASN(t *testing.T) {
	n := New("t")
	n.AddNode("a", Backbone, 7, ridFor(1))
	n.AddNode("b", Backbone, 7, ridFor(2))
	if err := n.Validate(); err == nil {
		t.Error("duplicate ASN not caught")
	}
}

func TestValidateCatchesDuplicateRouterID(t *testing.T) {
	n := New("t")
	n.AddNode("a", Backbone, 1, ridFor(1))
	n.AddNode("b", Backbone, 2, ridFor(1))
	if err := n.Validate(); err == nil {
		t.Error("duplicate router-id not caught")
	}
}

// Property: for any fat-tree size, every generated link subnet is unique
// and every interface address is unique network-wide.
func TestQuickAddressUniqueness(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%4)*2 + 2 // 2,4,6,8
		n := FatTree(FatTreeOpts{K: k})
		subnets := map[netip.Prefix]bool{}
		addrs := map[netip.Addr]bool{}
		for _, l := range n.Links {
			if subnets[l.Subnet] || addrs[l.AddrA] || addrs[l.AddrB] {
				return false
			}
			subnets[l.Subnet] = true
			addrs[l.AddrA] = true
			addrs[l.AddrB] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: ridFor is injective over a large ordinal range.
func TestQuickRidInjective(t *testing.T) {
	seen := map[netip.Addr]int{}
	for i := 1; i < 70000; i += 7 {
		r := ridFor(i)
		if prev, ok := seen[r]; ok {
			t.Fatalf("ridFor(%d) == ridFor(%d) == %v", i, prev, r)
		}
		seen[r] = i
	}
}
