package sbfl_test

import (
	"math"
	"testing"

	"acr/internal/bgp"
	"acr/internal/coverage"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func spectrum(t *testing.T, s *scenario.Scenario) *coverage.Matrix {
	t.Helper()
	n := bgp.Compile(s.Topo, s.Files())
	out := bgp.Simulate(n, bgp.Options{})
	g := bgp.BuildProvenance(n, out)
	rep := verify.Verify(n, out, s.Intents)
	return coverage.Build(n, g, rep)
}

func TestFormulaValues(t *testing.T) {
	// Hand-checked values: f=1, p=1, tf=1, tp=2 → Tarantula 2/3.
	cases := []struct {
		f       sbfl.Formula
		fc, pc  int
		tf, tp  int
		want    float64
		withinE float64
	}{
		{sbfl.Tarantula, 1, 1, 1, 2, 2.0 / 3.0, 1e-9},
		{sbfl.Tarantula, 1, 2, 1, 2, 0.5, 1e-9},
		{sbfl.Tarantula, 0, 5, 1, 10, 0, 0},
		{sbfl.Tarantula, 1, 0, 1, 2, 1.0, 1e-9},
		{sbfl.Ochiai, 1, 1, 1, 2, 1 / math.Sqrt(2), 1e-9},
		{sbfl.Ochiai, 2, 0, 2, 5, 1.0, 1e-9},
		{sbfl.Jaccard, 1, 1, 1, 2, 0.5, 1e-9},
		{sbfl.Jaccard, 2, 2, 4, 9, 2.0 / 6.0, 1e-9},
		{sbfl.DStar, 2, 1, 3, 9, 4.0 / 2.0, 1e-9},
		{sbfl.DStar, 0, 1, 3, 9, 0, 0},
	}
	for _, tc := range cases {
		got := tc.f.Fn(tc.fc, tc.pc, tc.tf, tc.tp)
		if math.Abs(got-tc.want) > tc.withinE {
			t.Errorf("%s(%d,%d,%d,%d) = %v, want %v", tc.f.Name, tc.fc, tc.pc, tc.tf, tc.tp, got, tc.want)
		}
	}
}

func TestDStarDivZeroBounded(t *testing.T) {
	got := sbfl.DStar.Fn(3, 0, 3, 5)
	if math.IsInf(got, 1) || math.IsNaN(got) || got <= 0 {
		t.Errorf("DStar 0-denominator = %v, want large finite", got)
	}
}

// TestFigure2TarantulaPaperNumbers reproduces §5 step 1: in the Figure 2
// incident, three tests run (one per subnetwork), only 10.0.0.0/16 fails,
// and router A's most suspicious line is line 9 — the DCN-side import
// attachment — with susp = 0.67 (failed=1, passed=1 of totalpassed=2).
func TestFigure2TarantulaPaperNumbers(t *testing.T) {
	s := scenario.Figure2()
	m := spectrum(t, s)
	if m.TotalFailed() != 1 || m.TotalPassed() != 2 {
		t.Fatalf("spectrum totals = %d failed / %d passed, want 1/2", m.TotalFailed(), m.TotalPassed())
	}
	ranks := sbfl.Rank(m, sbfl.Tarantula)

	line9 := netcfg.LineRef{Device: "A", Line: scenario.FigureALineDCNImport}
	sc := sbfl.ScoreOf(ranks, line9)
	if sc == nil {
		t.Fatalf("A line 9 not covered; ranking:\n%s", sbfl.Format(ranks, 20))
	}
	if math.Abs(sc.Susp-2.0/3.0) > 1e-9 {
		t.Errorf("A:9 susp = %.4f, want 0.6667 (the paper's 0.67)", sc.Susp)
	}
	if sc.Failed != 1 || sc.Passed != 1 {
		t.Errorf("A:9 counts = failed %d passed %d, want 1/1 (per the paper)", sc.Failed, sc.Passed)
	}
	// Line 9 is the TOP suspiciousness on router A, as the paper reports.
	for _, r := range ranks {
		if r.Line.Device != "A" {
			continue
		}
		if r.Susp > sc.Susp+1e-9 {
			t.Errorf("line %v on A scores %.3f > line 9's %.3f; paper says 0.67 is A's highest",
				r.Line, r.Susp, sc.Susp)
		}
	}
	// The PoP-side attachment (line 10) is never covered by the failing
	// test; its suspiciousness must be 0.
	line10 := netcfg.LineRef{Device: "A", Line: scenario.FigureALinePoPImport}
	if sc10 := sbfl.ScoreOf(ranks, line10); sc10 != nil && sc10.Susp != 0 {
		t.Errorf("A:10 susp = %.3f, want 0", sc10.Susp)
	}
	// The prefix-list line 11 (the actual root cause) scores 0.5: covered
	// by the failing test and both passing tests.
	line11 := netcfg.LineRef{Device: "A", Line: scenario.FigureALinePrefixList}
	sc11 := sbfl.ScoreOf(ranks, line11)
	if sc11 == nil || math.Abs(sc11.Susp-0.5) > 1e-9 {
		t.Errorf("A:11 = %+v, want susp 0.5", sc11)
	}
}

// TestFigure2SecondIterationLocalizesC reproduces §5's second iteration:
// after repairing A only, C's DCN-side import attachment scores 0.5
// (covered by the failing test and both passing tests).
func TestFigure2SecondIterationLocalizesC(t *testing.T) {
	s := scenario.Figure2()
	es := scenario.Figure2PaperRepair()[0] // repair A only
	next, err := es.Apply(s.Configs["A"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["A"] = next
	m := spectrum(t, s)
	if m.TotalFailed() != 1 {
		t.Fatalf("failed = %d, want 1 after partial repair", m.TotalFailed())
	}
	ranks := sbfl.Rank(m, sbfl.Tarantula)
	lineC := netcfg.LineRef{Device: "C", Line: scenario.FigureCLineDCNImport}
	sc := sbfl.ScoreOf(ranks, lineC)
	if sc == nil {
		t.Fatalf("C's DCNSide import line not covered; ranking:\n%s", sbfl.Format(ranks, 25))
	}
	if math.Abs(sc.Susp-0.5) > 1e-9 {
		t.Errorf("C:%d susp = %.4f, want 0.5 (the paper's value)", scenario.FigureCLineDCNImport, sc.Susp)
	}
	if sc.Failed != 1 || sc.Passed != 2 {
		t.Errorf("C attach counts = %d/%d, want failed 1, passed 2", sc.Failed, sc.Passed)
	}
	// A's repaired line 9 drops: its overrides now only touch passing
	// prefixes... it is still covered by the failing test only through the
	// (non-matching) policy attachment execution, so it may retain 0.67;
	// what matters is C's line is now among the suspicious set.
	sus := sbfl.Suspicious(ranks, 32, 0.5)
	found := false
	for _, s := range sus {
		if s.Line == lineC {
			found = true
		}
	}
	if !found {
		t.Errorf("C's attach line missing from suspicious set:\n%s", sbfl.Format(sus, 32))
	}
}

func TestRankDeterministicAndSorted(t *testing.T) {
	s := scenario.Figure2()
	m := spectrum(t, s)
	a := sbfl.Rank(m, sbfl.Tarantula)
	b := sbfl.Rank(m, sbfl.Tarantula)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("rank lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Susp > a[i-1].Susp {
			t.Fatalf("rank not sorted at %d", i)
		}
	}
}

func TestSuspiciousFiltering(t *testing.T) {
	scores := []sbfl.Score{
		{Line: netcfg.LineRef{Device: "A", Line: 1}, Susp: 1.0},
		{Line: netcfg.LineRef{Device: "A", Line: 2}, Susp: 0.8},
		{Line: netcfg.LineRef{Device: "A", Line: 3}, Susp: 0.5},
		{Line: netcfg.LineRef{Device: "A", Line: 4}, Susp: 0.2},
		{Line: netcfg.LineRef{Device: "A", Line: 5}, Susp: 0},
	}
	got := sbfl.Suspicious(scores, 0, 0.5)
	if len(got) != 3 {
		t.Errorf("Suspicious(minSusp=0.5) = %d entries, want 3", len(got))
	}
	got = sbfl.Suspicious(scores, 2, 0.1)
	if len(got) != 2 {
		t.Errorf("Suspicious(k=2) = %d entries, want 2", len(got))
	}
}

func TestRankOf(t *testing.T) {
	scores := []sbfl.Score{
		{Line: netcfg.LineRef{Device: "A", Line: 1}, Susp: 1.0},
		{Line: netcfg.LineRef{Device: "A", Line: 2}, Susp: 0.8},
		{Line: netcfg.LineRef{Device: "A", Line: 3}, Susp: 0.8},
		{Line: netcfg.LineRef{Device: "A", Line: 4}, Susp: 0.2},
	}
	if got := sbfl.RankOf(scores, netcfg.LineRef{Device: "A", Line: 3}); got != 3 {
		t.Errorf("RankOf tied line = %d, want 3 (worst-case rank)", got)
	}
	if got := sbfl.RankOf(scores, netcfg.LineRef{Device: "Z", Line: 9}); got != 0 {
		t.Errorf("RankOf missing line = %d, want 0", got)
	}
}

func TestAllFormulasRankFaultHighOnWrongASN(t *testing.T) {
	// Break a stub's uplink AS number in the WAN; every formula must rank
	// the faulty session line within the top 10.
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	f := netcfg.MustParse(s.Configs["pop0"])
	asnLine := f.BGP.Peers[0].ASNLine
	bad := " peer " + f.BGP.Peers[0].Addr.String() + " as-number 64999"
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.ReplaceLine{At: asnLine, Text: bad}}}.Apply(s.Configs["pop0"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["pop0"] = next
	m := spectrum(t, s)
	if m.TotalFailed() == 0 {
		t.Fatal("wrong ASN caused no failures; scenario broken")
	}
	faulty := netcfg.LineRef{Device: "pop0", Line: asnLine}
	for _, formula := range sbfl.Formulas {
		ranks := sbfl.Rank(m, formula)
		r := sbfl.RankOf(ranks, faulty)
		if r == 0 || r > 10 {
			t.Errorf("%s ranks faulty line at %d, want top-10\n%s", formula.Name, r, sbfl.Format(ranks, 12))
		}
	}
}
