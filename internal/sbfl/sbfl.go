// Package sbfl implements Spectrum-Based Fault Localization over
// configuration lines (§4.1 of the paper): every line gets a
// suspiciousness score from how often failing vs. passing tests cover it.
// Tarantula (Eq. 1 of the paper) is the default; Ochiai, Jaccard, and
// DStar are provided for the suspiciousness-metric ablation the paper
// lists as future work (§6).
package sbfl

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"acr/internal/coverage"
	"acr/internal/netcfg"
)

// Formula computes suspiciousness from per-line counts: failed/passed are
// the numbers of failing/passing tests covering the line; totalFailed and
// totalPassed are suite-wide totals.
type Formula struct {
	Name string
	Fn   func(failed, passed, totalFailed, totalPassed int) float64
}

// Tarantula is Eq. 1 of the paper:
//
//	susp(s) = (failed/totalFailed) / (passed/totalPassed + failed/totalFailed)
var Tarantula = Formula{Name: "tarantula", Fn: func(f, p, tf, tp int) float64 {
	if tf == 0 || f == 0 {
		return 0
	}
	fr := float64(f) / float64(tf)
	pr := 0.0
	if tp > 0 {
		pr = float64(p) / float64(tp)
	}
	return fr / (pr + fr)
}}

// Ochiai: failed / sqrt(totalFailed * (failed+passed)).
var Ochiai = Formula{Name: "ochiai", Fn: func(f, p, tf, tp int) float64 {
	if f == 0 || tf == 0 {
		return 0
	}
	return float64(f) / math.Sqrt(float64(tf)*float64(f+p))
}}

// Jaccard: failed / (totalFailed + passed).
var Jaccard = Formula{Name: "jaccard", Fn: func(f, p, tf, tp int) float64 {
	if f == 0 {
		return 0
	}
	return float64(f) / float64(tf+p)
}}

// DStar (D*, exponent 2): failed² / (passed + totalFailed - failed).
// The undefined 0/0 corner (a line covered by every failing test and no
// passing test) is mapped to a large finite score so rankings stay total.
var DStar = Formula{Name: "dstar", Fn: func(f, p, tf, tp int) float64 {
	if f == 0 {
		return 0
	}
	den := float64(p + tf - f)
	if den <= 0 {
		return math.MaxFloat64 / 2
	}
	return float64(f*f) / den
}}

// Formulas lists every provided formula, Tarantula first.
var Formulas = []Formula{Tarantula, Ochiai, Jaccard, DStar}

// Score is one line's suspiciousness.
type Score struct {
	Line   netcfg.LineRef
	Susp   float64
	Failed int
	Passed int
	// Prior is the static-analysis prior folded into Susp by ApplyPrior
	// (0 when the line carries no diagnostic).
	Prior float64
}

// Rank scores every covered line and sorts by suspiciousness (descending),
// breaking ties by line reference for determinism.
func Rank(m *coverage.Matrix, f Formula) []Score {
	tf, tp := m.TotalFailed(), m.TotalPassed()
	var out []Score
	for _, l := range m.CoveredLines() {
		fc, pc := m.Counts(l)
		out = append(out, Score{
			Line:   l,
			Susp:   f.Fn(fc, pc, tf, tp),
			Failed: fc,
			Passed: pc,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Susp != out[j].Susp {
			return out[i].Susp > out[j].Susp
		}
		return out[i].Line.Less(out[j].Line)
	})
	return out
}

// Suspicious filters a ranking to scores >= minSusp, keeping at least k
// (k <= 0 means unlimited). A suspiciousness tie is never split: lines
// scoring exactly as the k-th line are all included (bounded by 8×k as a
// runaway guard) — the ranking's tie-break is lexicographic and carries
// no signal. These are the lines the fix stage targets.
func Suspicious(scores []Score, k int, minSusp float64) []Score {
	var out []Score
	for _, s := range scores {
		if s.Susp < minSusp || s.Susp == 0 {
			break // sorted descending
		}
		if k > 0 && len(out) >= k && s.Susp < out[len(out)-1].Susp {
			break
		}
		if k > 0 && len(out) >= 8*k {
			break
		}
		out = append(out, s)
	}
	return out
}

// ApplyPrior folds a static-analysis prior into a ranking: a line with
// prior p gets susp' = 1 - (1-susp)(1-p) — a noisy-or, so static evidence
// boosts but never drowns the spectrum signal — and flagged lines absent
// from the ranking (statically suspect but not covered by any sampled
// test) are appended with susp = p, putting them in contention for the
// fix stage. Returns the new ranking (input untouched) and the number of
// uncovered lines seeded in.
func ApplyPrior(scores []Score, prior map[netcfg.LineRef]float64) ([]Score, int) {
	if len(prior) == 0 {
		return scores, 0
	}
	out := make([]Score, len(scores), len(scores)+len(prior))
	copy(out, scores)
	covered := make(map[netcfg.LineRef]bool, len(out))
	for i := range out {
		covered[out[i].Line] = true
		if p := prior[out[i].Line]; p > 0 {
			out[i].Prior = p
			out[i].Susp = 1 - (1-out[i].Susp)*(1-p)
		}
	}
	seeded := 0
	for l, p := range prior {
		if p > 0 && !covered[l] {
			out = append(out, Score{Line: l, Susp: p, Prior: p})
			seeded++
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Susp != out[j].Susp {
			return out[i].Susp > out[j].Susp
		}
		return out[i].Line.Less(out[j].Line)
	})
	return out, seeded
}

// ScoreOf returns the score of a specific line in a ranking, or nil.
func ScoreOf(scores []Score, l netcfg.LineRef) *Score {
	for i := range scores {
		if scores[i].Line == l {
			return &scores[i]
		}
	}
	return nil
}

// RankOf returns the 1-based position of line l in the ranking (worst-case
// rank: lines tied with l count as ranked above it), or 0 when absent.
// This is the standard localization-quality metric (EXAM-style).
func RankOf(scores []Score, l netcfg.LineRef) int {
	target := ScoreOf(scores, l)
	if target == nil {
		return 0
	}
	rank := 0
	for _, s := range scores {
		if s.Susp >= target.Susp {
			rank++
		}
	}
	return rank
}

// Format renders the top of a ranking for reports.
func Format(scores []Score, k int) string {
	var sb strings.Builder
	for i, s := range scores {
		if i == k {
			break
		}
		fmt.Fprintf(&sb, "%2d. %-18s susp=%.3f (failed=%d passed=%d)\n", i+1, s.Line, s.Susp, s.Failed, s.Passed)
	}
	return sb.String()
}
