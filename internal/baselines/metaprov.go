// Package baselines implements the two comparison points of §2.3:
//
//   - MetaProv (provenance-based repair, Figure 3a): the search space is
//     the set of leaf configuration predicates of the violated event's
//     provenance tree. It picks single-line fixes and validates them ONLY
//     against the target violation — efficient, but blind to regressions
//     and to multi-line root causes, which is the paper's incorrectness
//     argument.
//   - AED (synthesis-based repair, Figure 3b): the search space is the
//     power set of per-line delta variables (2^N). Our surrogate
//     systematically enumerates operator applications over every line
//     (no localization) with full validation of every candidate —
//     correct by construction, but the explored-candidate count grows
//     with configuration size, which is the paper's scalability argument.
package baselines

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/verify"
)

// MetaProvResult reports one provenance-repair run.
type MetaProvResult struct {
	// SearchSpace is the number of leaf configuration predicates in the
	// violated event's provenance tree (Figure 3a's N).
	SearchSpace int
	// TargetFixed reports whether some candidate made the originally
	// failing tests pass (MetaProv's only acceptance criterion).
	TargetFixed bool
	// CandidatesTried counts single-line candidates validated against the
	// target violation.
	CandidatesTried int
	// ChosenDesc describes the accepted repair.
	ChosenDesc string
	// FinalConfigs is the repaired configuration map (base when unfixed).
	FinalConfigs map[string]*netcfg.Config
	// Regressions counts intents that PASSED before the repair and FAIL
	// after it — found only by the full re-verification MetaProv itself
	// never runs. Regressions > 0 is §2.3's incorrectness in action.
	Regressions int
	// StillFailing counts originally failing intents that remain failing.
	StillFailing int
	// Canceled reports the run was interrupted by its context.
	Canceled bool
}

// Correct reports whether the repair fixed the violation without
// regressions (judged by the full verification MetaProv skips).
func (r *MetaProvResult) Correct() bool {
	return r.TargetFixed && r.Regressions == 0 && r.StillFailing == 0
}

// Summary renders the result.
func (r *MetaProvResult) Summary() string {
	return fmt.Sprintf("metaprov: space=%d tried=%d fixed=%v regressions=%d chosen=%q",
		r.SearchSpace, r.CandidatesTried, r.TargetFixed, r.Regressions, r.ChosenDesc)
}

// MetaProv runs the provenance baseline on a repair problem.
func MetaProv(p core.Problem) *MetaProvResult {
	return MetaProvContext(context.Background(), p)
}

// MetaProvContext is MetaProv with cooperative cancellation: the context
// is checked between leaf-candidate validations and threaded into each
// incremental check.
func MetaProvContext(ctx context.Context, p core.Problem) *MetaProvResult {
	res := &MetaProvResult{FinalConfigs: p.Configs}
	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	baseRep := iv.BaseReport()
	if baseRep.NumFailed() == 0 {
		res.TargetFixed = true
		return res
	}
	failingIDs := map[string]bool{}
	for _, v := range baseRep.Failed() {
		failingIDs[v.Intent.ID] = true
	}

	// The provenance tree of the violated event: every derivation of the
	// failing tests' prefixes, plus negative provenance. Its distinct
	// configuration lines are the leaves — the search space.
	leafSet := map[netcfg.LineRef]bool{}
	for _, v := range baseRep.Failed() {
		if v.Prefix.IsValid() {
			for _, l := range iv.BaseProvenance().LinesForPrefix(v.Prefix) {
				leafSet[l] = true
			}
		} else {
			for _, l := range bgp.MissingOriginLines(iv.BaseNet(), v.Intent.DstPrefix) {
				leafSet[l] = true
			}
		}
	}
	for _, l := range iv.BaseNet().FailedSessionLines() {
		leafSet[l] = true
	}
	leaves := make([]netcfg.LineRef, 0, len(leafSet))
	for l := range leafSet {
		leaves = append(leaves, l)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Less(leaves[j]) })
	res.SearchSpace = len(leaves)

	failingPrefixes := failingDstPrefixes(baseRep)
	for _, leaf := range leaves {
		for _, cand := range leafCandidates(iv.BaseFiles(), p.Configs, leaf, failingPrefixes) {
			if ctx.Err() != nil {
				res.Canceled = true
				res.StillFailing = len(failingIDs)
				return res
			}
			res.CandidatesTried++
			rep, _, err := iv.CheckCtx(ctx, []netcfg.EditSet{cand.edits})
			if err != nil {
				continue
			}
			// MetaProv's acceptance: the target violation is gone. It does
			// not look at anything else.
			ok := true
			for id := range failingIDs {
				if v := rep.ByID(id); v == nil || !v.Pass {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			res.TargetFixed = true
			res.ChosenDesc = cand.desc
			res.FinalConfigs = applyOne(p.Configs, cand.edits)
			// Post-hoc audit (not part of MetaProv): full verification.
			for i, v := range rep.Verdicts {
				if v.Pass {
					continue
				}
				if baseRep.Verdicts[i].Pass {
					res.Regressions++
				} else if !failingIDs[v.Intent.ID] {
					res.StillFailing++
				}
			}
			return res
		}
	}
	res.StillFailing = len(failingIDs)
	return res
}

type leafCandidate struct {
	edits netcfg.EditSet
	desc  string
}

// leafCandidates generates MetaProv's single-line value modifications for
// one leaf predicate: delete the line, or — for a permit prefix-list entry
// covering a failing prefix — shadow that prefix with a deny entry.
func leafCandidates(files map[string]*netcfg.File, configs map[string]*netcfg.Config, leaf netcfg.LineRef, failing []netip.Prefix) []leafCandidate {
	var out []leafCandidate
	f := files[leaf.Device]
	if f == nil {
		return nil
	}
	if e := prefixListEntryAt(f, leaf.Line); e != nil && e.Permit {
		for _, p := range failing {
			if e.Matches(p) {
				out = append(out, leafCandidate{
					edits: netcfg.EditSet{Device: leaf.Device, Edits: []netcfg.Edit{
						netcfg.InsertBefore{
							At:   leaf.Line,
							Text: netcfg.FormatPrefixListEntry(e.Name, maxInt(1, e.Index-1), false, p, 0, 0),
						},
					}},
					desc: fmt.Sprintf("metaprov: shadow %s with deny in %s at %s", p, e.Name, leaf),
				})
			}
		}
	}
	out = append(out, leafCandidate{
		edits: netcfg.EditSet{Device: leaf.Device, Edits: []netcfg.Edit{netcfg.DeleteLine{At: leaf.Line}}},
		desc:  fmt.Sprintf("metaprov: delete %s (%s)", leaf, strings.TrimSpace(configs[leaf.Device].Line(leaf.Line))),
	})
	return out
}

func prefixListEntryAt(f *netcfg.File, line int) *netcfg.PrefixList {
	for _, e := range f.PrefixLists {
		if e.Line == line {
			return e
		}
	}
	return nil
}

func failingDstPrefixes(rep *verify.Report) []netip.Prefix {
	seen := map[netip.Prefix]bool{}
	var out []netip.Prefix
	for _, v := range rep.Failed() {
		p := v.Intent.DstPrefix.Masked()
		if p.IsValid() && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func applyOne(configs map[string]*netcfg.Config, es netcfg.EditSet) map[string]*netcfg.Config {
	out := make(map[string]*netcfg.Config, len(configs))
	for d, c := range configs {
		out[d] = c
	}
	if base, ok := out[es.Device]; ok {
		if next, err := es.Apply(base); err == nil {
			out[es.Device] = next
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
