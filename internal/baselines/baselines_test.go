package baselines_test

import (
	"strings"
	"testing"

	"acr/internal/baselines"
	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/scenario"
	"acr/internal/verify"
)

func problemOf(s *scenario.Scenario) core.Problem {
	return core.Problem{Topo: s.Topo, Configs: s.Configs, Intents: s.Intents}
}

func fullVerify(t *testing.T, p core.Problem, configs map[string]*netcfg.Config) *verify.Report {
	t.Helper()
	files := map[string]*netcfg.File{}
	for d, c := range configs {
		f, err := netcfg.Parse(c)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		files[d] = f
	}
	n := bgp.Compile(p.Topo, files)
	return verify.Verify(n, bgp.Simulate(n, bgp.Options{}), p.Intents)
}

func TestMetaProvSearchSpaceIsLeafCount(t *testing.T) {
	s := scenario.Figure2()
	res := baselines.MetaProv(problemOf(s))
	if res.SearchSpace == 0 {
		t.Fatal("empty search space")
	}
	// Figure 3a: the space is leaf predicates, far smaller than total
	// configuration lines.
	if res.SearchSpace >= s.TotalConfigLines() {
		t.Errorf("search space %d not smaller than total lines %d", res.SearchSpace, s.TotalConfigLines())
	}
}

func TestMetaProvOnFigure2(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	res := baselines.MetaProv(p)
	if !res.TargetFixed {
		t.Fatalf("MetaProv could not silence the target violation: %s", res.Summary())
	}
	if res.CandidatesTried == 0 {
		t.Error("no candidates tried")
	}
	// MetaProv validated only the target; audit its output fully.
	rep := fullVerify(t, p, res.FinalConfigs)
	t.Logf("metaprov figure2: %s; full verification fails=%d", res.Summary(), rep.NumFailed())
}

func TestMetaProvRegressionBlindnessOnIsolationLeak(t *testing.T) {
	// The §2.3 incorrectness claim: on an isolation leak, MetaProv's
	// single-line fixes include deleting session lines — which silences
	// the leak but severs reachability. MetaProv accepts it anyway
	// because it never re-checks the other intents.
	s := scenario.WAN(6, 3, 2, scenario.GenOptions{})
	var victim string
	var attachLine int
	for d, c := range s.Configs {
		f := netcfg.MustParse(c)
		if g := f.GroupByName(scenario.WANGroupPoPFacing); g != nil && len(g.Policies) > 0 {
			victim, attachLine = d, g.Policies[0].Line
			break
		}
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: attachLine}}}.Apply(s.Configs[victim])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs[victim] = next
	p := problemOf(s)
	res := baselines.MetaProv(p)
	if !res.TargetFixed {
		t.Skipf("MetaProv found no target fix: %s", res.Summary())
	}
	if res.Regressions == 0 && res.StillFailing == 0 {
		// Not guaranteed on every topology, but the audit numbers must at
		// least be plumbed through.
		t.Logf("MetaProv got lucky here: %s", res.Summary())
	} else {
		t.Logf("MetaProv incorrectness demonstrated: %s", res.Summary())
	}
	if !strings.Contains(res.Summary(), "metaprov") {
		t.Error("summary malformed")
	}
}

func TestAEDSearchSpaceIsExponential(t *testing.T) {
	s := scenario.Figure2()
	res := baselines.AED(problemOf(s), baselines.AEDOptions{MaxCandidates: 1})
	if res.SearchSpaceLog2 != s.TotalConfigLines() {
		t.Errorf("log2 space = %d, want total lines %d", res.SearchSpaceLog2, s.TotalConfigLines())
	}
	// The paper: "at least 2^12 for router A, which contains 12 lines in
	// the snippet" — our full scenario has far more than 12 lines.
	if res.SearchSpaceLog2 < 12 {
		t.Errorf("log2 space = %d, want >= 12", res.SearchSpaceLog2)
	}
}

func TestAEDCorrectOnFigure2(t *testing.T) {
	s := scenario.Figure2()
	p := problemOf(s)
	res := baselines.AED(p, baselines.AEDOptions{})
	if !res.Feasible {
		t.Fatalf("AED infeasible within budget: %s", res.Summary())
	}
	rep := fullVerify(t, p, res.FinalConfigs)
	if rep.NumFailed() != 0 {
		t.Fatalf("AED accepted a candidate with side effects:\n%s", rep.Summary())
	}
	if res.Explored == 0 {
		t.Error("explored = 0")
	}
	t.Logf("aed figure2: %s", res.Summary())
}

func TestAEDBudgetExhaustion(t *testing.T) {
	s := scenario.Figure2()
	res := baselines.AED(problemOf(s), baselines.AEDOptions{MaxCandidates: 2})
	if res.Feasible && res.Explored > 2 {
		t.Errorf("budget not honored: %s", res.Summary())
	}
	if !res.Feasible && !res.Exhausted {
		t.Errorf("infeasible without exhaustion: %s", res.Summary())
	}
}

// TestACRBeatsAEDInExploredCandidates is the §2.3/§3 efficiency claim at
// scale: unlocalized synthesis walks the line×operator space in order, so
// a fault on a late-enumerated device costs it hundreds of validations,
// while ACR's localization jumps straight to the suspicious lines. (On
// the tiny Figure 2 network the enumeration can get lucky; the claim is
// about growth with configuration size — see the Figure 3 bench.)
func TestACRBeatsAEDInExploredCandidates(t *testing.T) {
	s := scenario.WAN(8, 4, 3, scenario.GenOptions{StaticOriginEvery: 1})
	// Fault on the last stub in topology order: missing redistribution.
	f := netcfg.MustParse(s.Configs["dcn2"])
	if f.BGP.Redistribute == nil {
		t.Fatal("dcn2 lacks static origination")
	}
	next, err := netcfg.EditSet{Edits: []netcfg.Edit{netcfg.DeleteLine{At: f.BGP.Redistribute.Line}}}.Apply(s.Configs["dcn2"])
	if err != nil {
		t.Fatal(err)
	}
	s.Configs["dcn2"] = next
	p := problemOf(s)
	acr := core.Repair(p, core.Options{Strategy: core.BruteForce})
	if !acr.Feasible {
		t.Fatalf("ACR infeasible: %s", acr.Summary())
	}
	aed := baselines.AED(p, baselines.AEDOptions{})
	if !aed.Feasible {
		t.Skip("AED infeasible within budget; scalability point stands trivially")
	}
	if acr.CandidatesValidated >= aed.Explored {
		t.Errorf("ACR validated %d >= AED explored %d; localization should shrink the search",
			acr.CandidatesValidated, aed.Explored)
	}
	t.Logf("ACR validated %d candidates; AED explored %d", acr.CandidatesValidated, aed.Explored)
}

func TestMetaProvAlreadyCorrect(t *testing.T) {
	s := scenario.Figure2Correct()
	res := baselines.MetaProv(problemOf(s))
	if !res.TargetFixed || res.CandidatesTried != 0 {
		t.Errorf("correct network should be a no-op: %s", res.Summary())
	}
}
