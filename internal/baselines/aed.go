package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"acr/internal/bgp"
	"acr/internal/core"
	"acr/internal/netcfg"
	"acr/internal/sbfl"
	"acr/internal/tmplreg"
	"acr/internal/verify"
)

// AEDOptions tunes the synthesis baseline.
type AEDOptions struct {
	// MaxCandidates bounds exploration (the scalability knob the paper
	// argues AED lacks). Default 20000.
	MaxCandidates int
	// MaxCombo bounds the number of operator applications combined in one
	// candidate (subset cardinality). Default 2.
	MaxCombo int
	// Templates defaults to the full operator vocabulary.
	Templates []core.Template
}

func (o AEDOptions) withDefaults() AEDOptions {
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 20000
	}
	if o.MaxCombo <= 0 {
		o.MaxCombo = 2
	}
	if o.Templates == nil {
		o.Templates = tmplreg.Default.EngineTemplates()
	}
	return o
}

// AEDResult reports one synthesis run.
type AEDResult struct {
	// DeltaVariables is the number of configuration lines in scope — the
	// exponent of Figure 3b's search space (N = 2^DeltaVariables).
	DeltaVariables int
	// SearchSpaceLog2 is log2 of the theoretical search space.
	SearchSpaceLog2 int
	// Explored counts fully validated candidates.
	Explored int
	// Feasible reports whether a candidate passing EVERY intent was found
	// within the budget. AED-style synthesis never accepts a candidate
	// with side effects, so Feasible implies correct.
	Feasible bool
	// Applied describes the accepted candidate.
	Applied []string
	// FinalConfigs is the synthesized configuration map.
	FinalConfigs map[string]*netcfg.Config
	// Exhausted reports the budget ran out before a solution was found.
	Exhausted bool
	// Canceled reports the run was interrupted by its context before the
	// budget ran out; Explored reflects the partial work.
	Canceled bool
}

// Summary renders the result.
func (r *AEDResult) Summary() string {
	s := fmt.Sprintf("aed: deltaVars=%d space=2^%d explored=%d feasible=%v exhausted=%v",
		r.DeltaVariables, r.SearchSpaceLog2, r.Explored, r.Feasible, r.Exhausted)
	if r.Canceled {
		s += " canceled=true"
	}
	return s
}

// AED runs the synthesis baseline: every configuration line is a free
// location (no localization), every operator applies everywhere, every
// candidate is validated against the FULL intent suite from scratch
// semantics (no incremental reuse across candidates), and combinations up
// to MaxCombo are enumerated in increasing size — systematic and correct,
// with cost that scales with configuration size.
func AED(p core.Problem, opts AEDOptions) *AEDResult {
	return AEDContext(context.Background(), p, opts)
}

// AEDContext is AED with cooperative cancellation: the context is checked
// between candidate validations and threaded into each full verification.
func AEDContext(ctx context.Context, p core.Problem, opts AEDOptions) *AEDResult {
	opts = opts.withDefaults()
	res := &AEDResult{FinalConfigs: p.Configs}
	for _, c := range p.Configs {
		res.DeltaVariables += c.NumLines()
	}
	res.SearchSpaceLog2 = res.DeltaVariables

	iv := verify.NewIncremental(p.Topo, p.Configs, p.Intents, bgp.Options{})
	if iv.BaseReport().NumFailed() == 0 {
		res.Feasible = true
		return res
	}
	// Build the operator-application universe over EVERY line: the
	// flattened form of the delta-variable space. Reuse the template
	// vocabulary without any suspiciousness ranking.
	tctx := aedContext(p, iv)
	type app struct {
		up core.Update
	}
	var apps []app
	seen := map[string]bool{}
	for _, name := range deviceOrder(p) {
		cfg := p.Configs[name]
		for line := 1; line <= cfg.NumLines(); line++ {
			ref := netcfg.LineRef{Device: name, Line: line}
			for _, tmpl := range opts.Templates {
				for _, up := range tmpl.Generate(tctx, ref) {
					key := editKey(up)
					if !seen[key] {
						seen[key] = true
						apps = append(apps, app{up: up})
					}
				}
			}
		}
	}

	validate := func(up core.Update) bool {
		if res.Explored >= opts.MaxCandidates {
			return false
		}
		res.Explored++
		rep, err := iv.FullCheckCtx(ctx, up.Edits)
		if err != nil {
			return false
		}
		if rep.NumFailed() != 0 {
			return false
		}
		res.Feasible = true
		res.Applied = []string{up.Desc}
		res.FinalConfigs = applyUpdateAll(p.Configs, up)
		return true
	}

	// Cardinality 1.
	for _, a := range apps {
		if ctx.Err() != nil {
			res.Canceled = true
			return res
		}
		if res.Explored >= opts.MaxCandidates {
			res.Exhausted = true
			return res
		}
		if validate(a.up) {
			return res
		}
	}
	// Higher cardinalities: merge disjoint-device applications.
	if opts.MaxCombo >= 2 {
		for i := 0; i < len(apps); i++ {
			for j := i + 1; j < len(apps); j++ {
				if ctx.Err() != nil {
					res.Canceled = true
					return res
				}
				if res.Explored >= opts.MaxCandidates {
					res.Exhausted = true
					return res
				}
				merged, ok := mergeDisjoint(apps[i].up, apps[j].up)
				if !ok {
					continue
				}
				if validate(merged) {
					return res
				}
			}
		}
	}
	res.Exhausted = res.Explored >= opts.MaxCandidates
	return res
}

// aedContext builds a template context with NO localization state beyond
// what templates need (provenance for value solving, the report for
// failing intents).
func aedContext(p core.Problem, iv *verify.Incremental) *core.Context {
	return core.NewContext(p, iv, sbfl.Tarantula, rand.New(rand.NewSource(1)))
}

func deviceOrder(p core.Problem) []string {
	var out []string
	for _, nd := range p.Topo.Nodes() {
		if _, ok := p.Configs[nd.Name]; ok {
			out = append(out, nd.Name)
		}
	}
	return out
}

func editKey(up core.Update) string {
	s := ""
	for _, es := range up.Edits {
		s += es.String() + ";"
	}
	return s
}

func mergeDisjoint(a, b core.Update) (core.Update, bool) {
	devs := map[string]bool{}
	for _, es := range a.Edits {
		devs[es.Device] = true
	}
	for _, es := range b.Edits {
		if devs[es.Device] {
			return core.Update{}, false
		}
	}
	return core.Update{
		Edits: append(append([]netcfg.EditSet{}, a.Edits...), b.Edits...),
		Desc:  a.Desc + " + " + b.Desc,
	}, true
}

func applyUpdateAll(configs map[string]*netcfg.Config, up core.Update) map[string]*netcfg.Config {
	out := make(map[string]*netcfg.Config, len(configs))
	for d, c := range configs {
		out[d] = c
	}
	for _, es := range up.Edits {
		if base, ok := out[es.Device]; ok {
			if next, err := es.Apply(base); err == nil {
				out[es.Device] = next
			}
		}
	}
	return out
}
