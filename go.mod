module acr

go 1.22
